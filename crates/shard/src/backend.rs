//! Transport-generic shard execution: the [`ShardBackend`] trait.
//!
//! Every per-shard operation the scatter-gather executor performs —
//! batched probes, probes-only selections, join-probe fan-out, grouped
//! partial aggregates, column decodes, plan compilation, and the full
//! mutation surface — goes through this trait instead of calling
//! [`Database`] methods directly. Two implementations exist:
//!
//! * [`LocalShard`] — an in-process [`Database`], the historical
//!   behavior. Reads run against the engine's committed catalog tip.
//! * `RemoteShard` (see [`crate::remote`]) — a socket client speaking
//!   the `ccindex-wire` protocol to a `ShardServer` elsewhere.
//!
//! Because both route through the *same* operators with the *same*
//! arguments, distributed execution is byte-identical to in-process
//! execution by construction — there is one code path, parameterized
//! over transport. [`ShardPin`] is the snapshot-side twin: the
//! per-shard entry of a pinned `ShardedState`, either an owned
//! [`CatalogState`] (a local shard's committed generation) or a cloned
//! remote client (remote shards serve their server's committed tip).
//!
//! The free `catalog_*` functions are the shared read implementations
//! over a [`CatalogState`]; `LocalShard`, `ShardPin::Local`, and the
//! serving layer's `ShardServer` all dispatch through them, so a rid
//! that is out of range or a non-integer measure surfaces as the same
//! typed error no matter which side of the wire noticed.

use ccindex_wire::Spec;
use mmdb::plan::Plan;
use mmdb::{
    group_aggregate_pairs, indexed_nested_loop_join_rids_par, AggFn, CatalogState, Column,
    Database, ExecOptions, GroupRow, IndexKind, MmdbError, RebuildReport, Result, Table, Value,
};

use crate::remote::RemoteShard;

/// One shard's generation/exec introspection, transport-generic:
/// [`Database`] observers locally, the `Hello` handshake remotely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Committed catalog generation.
    pub generation: u64,
    /// Generations committed so far (`0` when the backend is a pinned
    /// state, which does not track commits).
    pub swaps: u64,
    /// Snapshots currently pinned (`0` for pinned states, as above).
    pub pinned: u64,
    /// The execution options in force.
    pub exec: ExecOptions,
}

/// The complete per-shard conversation of the scatter-gather executor.
///
/// Reads take `&self` and run against the backend's committed tip; the
/// executor only calls them through a consistent [`ShardPin`] set, so a
/// query never mixes generations across shards. Mutations take
/// `&mut self` and are driven one shard at a time by
/// `ShardedDatabase`'s commit discipline.
pub trait ShardBackend: std::fmt::Debug + Send + Sync {
    /// Batched equality probes on `table.column`: one ascending local
    /// RID set per value, in submission order.
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>>;

    /// Batched inclusive range probes on `table.column`.
    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>>;

    /// Execute a probes-only selection plan (the probe steps of a
    /// scatter template) and return the matching local RIDs, ascending.
    fn select(&self, plan: &Plan) -> Result<Vec<u32>>;

    /// Probe the `kind` index on `table.column` once per outer value —
    /// the inner half of a distributed indexed nested-loop join. Returns
    /// one local RID set per value, in submission order, each in index
    /// match order.
    fn join_probe_batch(
        &self,
        table: &str,
        column: &str,
        kind: IndexKind,
        values: &[Value],
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<Vec<u32>>>;

    /// Grouped partial aggregate over this shard's rows (`rids = None`)
    /// or a selected subset, in group-value order.
    fn group_partial(
        &self,
        table: &str,
        group_column: &str,
        measure: Option<&str>,
        agg: AggFn,
        rids: Option<&[u32]>,
    ) -> Result<Vec<GroupRow>>;

    /// Decode column values for the given local RIDs (`None` = every
    /// row, in RID order).
    fn column_values(&self, table: &str, column: &str, rids: Option<&[u32]>) -> Result<Vec<Value>>;

    /// Compile a query description through this shard's planner. Every
    /// shard holds the same schema and indexes, so the coordinator uses
    /// shard 0's plan as the scatter template.
    fn compile(&self, spec: &Spec) -> Result<Plan>;

    /// Column names of `table`, in declaration order.
    fn columns(&self, table: &str) -> Result<Vec<String>>;

    /// Row count of `table` on this shard.
    fn rows(&self, table: &str) -> Result<usize>;

    /// Register this shard's split of a table.
    fn register(&mut self, table: Table) -> Result<()>;

    /// Drop a table and everything built on it.
    fn drop_table(&mut self, table: &str) -> Result<()>;

    /// Build an index on this shard's rows.
    fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()>;

    /// Drop an index.
    fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()>;

    /// Replace a column's local values wholesale and rebuild its
    /// indexes.
    fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<RebuildReport>;

    /// Rebuild a column's RID list and indexes from current values.
    fn rebuild_column(&mut self, table: &str, column: &str) -> Result<RebuildReport>;

    /// Install new execution options on this shard.
    fn set_exec_options(&mut self, exec: ExecOptions) -> Result<()>;

    /// Serialize this shard's committed catalog tip into the paged
    /// `ccindex-store` container (the same bytes
    /// [`Database::save_to`] writes to disk). Local shards serialize
    /// their pinned tip directly; remote shards stream the server's
    /// pinned snapshot across the wire in CRC-checked chunks. Queries
    /// keep serving throughout — the source side works off a pinned
    /// generation, never a lock.
    fn fetch_snapshot(&self) -> Result<Vec<u8>>;

    /// Replace this shard's entire catalog with a serialized snapshot
    /// (the bytes a peer's [`ShardBackend::fetch_snapshot`] produced).
    /// Installs through the engine's ordinary commit cycle, so readers
    /// pinned to the old generation finish undisturbed. This is how a
    /// rebalanced or freshly-connected shard bootstraps from a peer
    /// without replaying row-by-row registration.
    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<()>;

    /// Pin this shard's committed tip for a composed snapshot.
    fn pin(&self) -> ShardPin;

    /// Generation/exec introspection.
    fn observe(&self) -> Result<ShardInfo>;

    /// Human-readable description for `explain()` output and errors.
    fn describe(&self) -> String;

    /// The in-process [`Database`], if this backend has one. Remote
    /// shards return `None` — their engine lives across the wire.
    fn as_database(&self) -> Option<&Database> {
        None
    }

    /// Hand this backend pre-registered handles from the coordinator's
    /// metric registry. The default is a no-op; `RemoteShard` installs
    /// its `transport.retries` counter here.
    fn install_metrics(&mut self, registry: &ccindex_obs::Registry) {
        let _ = registry;
    }
}

// ---------------------------------------------------------------------
// Shared catalog-level read implementations
// ---------------------------------------------------------------------

/// Resolve `table.column` in `cat` with typed errors.
pub(crate) fn table_column<'c>(
    cat: &'c CatalogState,
    table: &str,
    column: &str,
) -> Result<&'c Column> {
    cat.table(table)?
        .column(column)
        .ok_or_else(|| MmdbError::UnknownColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })
}

fn check_rids(cat: &CatalogState, table: &str, rids: &[u32]) -> Result<()> {
    let rows = cat.table(table)?.rows() as u32;
    match rids.iter().find(|&&r| r >= rows) {
        None => Ok(()),
        Some(bad) => Err(MmdbError::Unsupported {
            what: format!("rid {bad} is out of range for table `{table}` ({rows} rows)"),
        }),
    }
}

/// [`ShardBackend::select`] over a catalog: execute the probes-only
/// plan and keep the RIDs.
pub fn catalog_select(cat: &CatalogState, plan: &Plan) -> Result<Vec<u32>> {
    Ok(plan.execute_on(cat)?.rids().to_vec())
}

/// [`ShardBackend::join_probe_batch`] over a catalog: materialise the
/// outer values as a synthetic probe column and run the *same*
/// partitioned indexed nested-loop operator a local join uses, then
/// demultiplex its rows per probe. Probe `i` of the operator is value
/// `i`, so per-value match order is exactly the operator's.
pub fn catalog_join_probe_batch(
    cat: &CatalogState,
    table: &str,
    column: &str,
    kind: IndexKind,
    values: &[Value],
    lanes: usize,
    threads: usize,
) -> Result<Vec<Vec<u32>>> {
    let inner_col = table_column(cat, table, column)?;
    let inner_rids = cat.rid_list(table, column)?;
    let handle = cat.index(table, column, kind)?;
    let probe_col = Column::from_values(values);
    let probe_rids: Vec<u32> = (0..values.len() as u32).collect();
    let rows = indexed_nested_loop_join_rids_par(
        &probe_col,
        &probe_rids,
        inner_col,
        inner_rids,
        handle.as_search(),
        lanes,
        threads,
    );
    let mut out = vec![Vec::new(); values.len()];
    for row in rows {
        out[row.outer_rid as usize].push(row.inner_rid);
    }
    Ok(out)
}

/// [`ShardBackend::group_partial`] over a catalog. Validates the rid
/// range and the measure's integer domain (mirroring the planner's
/// check) so a stale or malformed remote request surfaces as a typed
/// error instead of a server-side panic.
pub fn catalog_group_partial(
    cat: &CatalogState,
    table: &str,
    group_column: &str,
    measure: Option<&str>,
    agg: AggFn,
    rids: Option<&[u32]>,
) -> Result<Vec<GroupRow>> {
    let group_col = table_column(cat, table, group_column)?;
    let measure_col = match measure {
        None => None,
        Some(m) => {
            let col = table_column(cat, table, m)?;
            let all_int = col
                .domain()
                .values()
                .iter()
                .all(|v| matches!(v, Value::Int(_)));
            if !all_int {
                return Err(MmdbError::NonIntegerMeasure {
                    table: table.to_owned(),
                    column: m.to_owned(),
                });
            }
            Some(col)
        }
    };
    if agg != AggFn::Count && measure_col.is_none() {
        return Err(MmdbError::Unsupported {
            what: format!("aggregate {agg:?} needs a measure column"),
        });
    }
    match rids {
        Some(rids) => {
            check_rids(cat, table, rids)?;
            Ok(group_aggregate_pairs(
                group_col,
                measure_col,
                rids.iter().map(|&r| (r, r)),
                agg,
            ))
        }
        None => {
            let rows = cat.table(table)?.rows() as u32;
            Ok(group_aggregate_pairs(
                group_col,
                measure_col,
                (0..rows).map(|r| (r, r)),
                agg,
            ))
        }
    }
}

/// [`ShardBackend::column_values`] over a catalog.
pub fn catalog_column_values(
    cat: &CatalogState,
    table: &str,
    column: &str,
    rids: Option<&[u32]>,
) -> Result<Vec<Value>> {
    let col = table_column(cat, table, column)?;
    match rids {
        None => Ok((0..col.len() as u32)
            .map(|r| col.value(r).clone())
            .collect()),
        Some(rids) => {
            check_rids(cat, table, rids)?;
            Ok(rids.iter().map(|&r| col.value(r).clone()).collect())
        }
    }
}

/// [`ShardBackend::compile`] over a catalog: replay the wire-level
/// query description through the ordinary builder.
pub fn catalog_compile(cat: &CatalogState, spec: &Spec) -> Result<Plan> {
    let mut q = cat.query(&spec.table);
    for p in &spec.filters {
        q = q.filter(p.clone());
    }
    if let Some((inner, cond)) = &spec.join {
        q = q.join(inner, cond.clone());
    }
    if let Some((column, agg)) = &spec.group {
        q = q.group_by(column, agg.clone());
    }
    if let Some(kind) = spec.forced_kind {
        q = q.using(kind);
    }
    if let Some(exec) = spec.exec {
        q = q.exec(exec);
    }
    q.plan()
}

/// [`ShardBackend::columns`] over a catalog.
pub fn catalog_columns(cat: &CatalogState, table: &str) -> Result<Vec<String>> {
    Ok(cat
        .table(table)?
        .columns()
        .map(|(name, _)| name.to_owned())
        .collect())
}

// ---------------------------------------------------------------------
// LocalShard
// ---------------------------------------------------------------------

/// An in-process shard: a [`Database`] behind the [`ShardBackend`]
/// surface. Reads run against the engine's committed catalog tip.
#[derive(Debug)]
pub struct LocalShard {
    db: Database,
}

impl LocalShard {
    /// Wrap an engine.
    pub fn new(db: Database) -> Self {
        Self { db }
    }

    /// The wrapped engine.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl ShardBackend for LocalShard {
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        self.db.catalog().point_probe_batch(table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        self.db.catalog().range_probe_batch(table, column, ranges)
    }

    fn select(&self, plan: &Plan) -> Result<Vec<u32>> {
        catalog_select(self.db.catalog(), plan)
    }

    fn join_probe_batch(
        &self,
        table: &str,
        column: &str,
        kind: IndexKind,
        values: &[Value],
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<Vec<u32>>> {
        catalog_join_probe_batch(
            self.db.catalog(),
            table,
            column,
            kind,
            values,
            lanes,
            threads,
        )
    }

    fn group_partial(
        &self,
        table: &str,
        group_column: &str,
        measure: Option<&str>,
        agg: AggFn,
        rids: Option<&[u32]>,
    ) -> Result<Vec<GroupRow>> {
        catalog_group_partial(self.db.catalog(), table, group_column, measure, agg, rids)
    }

    fn column_values(&self, table: &str, column: &str, rids: Option<&[u32]>) -> Result<Vec<Value>> {
        catalog_column_values(self.db.catalog(), table, column, rids)
    }

    fn compile(&self, spec: &Spec) -> Result<Plan> {
        catalog_compile(self.db.catalog(), spec)
    }

    fn columns(&self, table: &str) -> Result<Vec<String>> {
        catalog_columns(self.db.catalog(), table)
    }

    fn rows(&self, table: &str) -> Result<usize> {
        Ok(self.db.catalog().table(table)?.rows())
    }

    fn register(&mut self, table: Table) -> Result<()> {
        self.db.register(table)
    }

    fn drop_table(&mut self, table: &str) -> Result<()> {
        self.db.drop_table(table)
    }

    fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        self.db.create_index(table, column, kind)
    }

    fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        self.db.drop_index(table, column, kind)
    }

    fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<RebuildReport> {
        self.db.replace_column(table, column, values)
    }

    fn rebuild_column(&mut self, table: &str, column: &str) -> Result<RebuildReport> {
        self.db.rebuild_column(table, column)
    }

    fn set_exec_options(&mut self, exec: ExecOptions) -> Result<()> {
        self.db.set_exec_options(exec);
        Ok(())
    }

    fn fetch_snapshot(&self) -> Result<Vec<u8>> {
        Ok(self.db.save_to_bytes())
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<()> {
        self.db.restore_from_bytes(bytes, "snapshot transfer")
    }

    fn pin(&self) -> ShardPin {
        ShardPin::Local(self.db.catalog().clone())
    }

    fn observe(&self) -> Result<ShardInfo> {
        Ok(ShardInfo {
            generation: self.db.generation(),
            swaps: self.db.swap_count(),
            pinned: self.db.pinned_snapshots() as u64,
            exec: self.db.exec_options(),
        })
    }

    fn describe(&self) -> String {
        "in-process".to_owned()
    }

    fn as_database(&self) -> Option<&Database> {
        Some(&self.db)
    }
}

// ---------------------------------------------------------------------
// ShardPin
// ---------------------------------------------------------------------

/// One shard's entry in a pinned `ShardedState`: an owned
/// [`CatalogState`] for a local shard (that shard's committed
/// generation, frozen), or a cloned remote client (remote shards answer
/// from their server's committed tip — the server is the snapshot
/// authority across the wire).
///
/// Pins are read-only by design: every mutation returns a typed
/// [`MmdbError::Unsupported`], mirroring how a local `Snapshot` has no
/// mutation surface at all.
#[derive(Debug, Clone)]
pub enum ShardPin {
    /// A local shard's pinned catalog generation.
    Local(CatalogState),
    /// A remote shard, answering from its server's committed tip.
    Remote(RemoteShard),
}

impl ShardPin {
    fn immutable(&self, what: &str) -> MmdbError {
        MmdbError::Unsupported {
            what: format!("{what} on a pinned shard snapshot; mutate through ShardedDatabase"),
        }
    }
}

impl ShardBackend for ShardPin {
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        match self {
            ShardPin::Local(cat) => cat.point_probe_batch(table, column, values),
            ShardPin::Remote(r) => r.point_probe_batch(table, column, values),
        }
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        match self {
            ShardPin::Local(cat) => cat.range_probe_batch(table, column, ranges),
            ShardPin::Remote(r) => r.range_probe_batch(table, column, ranges),
        }
    }

    fn select(&self, plan: &Plan) -> Result<Vec<u32>> {
        match self {
            ShardPin::Local(cat) => catalog_select(cat, plan),
            ShardPin::Remote(r) => r.select(plan),
        }
    }

    fn join_probe_batch(
        &self,
        table: &str,
        column: &str,
        kind: IndexKind,
        values: &[Value],
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<Vec<u32>>> {
        match self {
            ShardPin::Local(cat) => {
                catalog_join_probe_batch(cat, table, column, kind, values, lanes, threads)
            }
            ShardPin::Remote(r) => r.join_probe_batch(table, column, kind, values, lanes, threads),
        }
    }

    fn group_partial(
        &self,
        table: &str,
        group_column: &str,
        measure: Option<&str>,
        agg: AggFn,
        rids: Option<&[u32]>,
    ) -> Result<Vec<GroupRow>> {
        match self {
            ShardPin::Local(cat) => {
                catalog_group_partial(cat, table, group_column, measure, agg, rids)
            }
            ShardPin::Remote(r) => r.group_partial(table, group_column, measure, agg, rids),
        }
    }

    fn column_values(&self, table: &str, column: &str, rids: Option<&[u32]>) -> Result<Vec<Value>> {
        match self {
            ShardPin::Local(cat) => catalog_column_values(cat, table, column, rids),
            ShardPin::Remote(r) => r.column_values(table, column, rids),
        }
    }

    fn compile(&self, spec: &Spec) -> Result<Plan> {
        match self {
            ShardPin::Local(cat) => catalog_compile(cat, spec),
            ShardPin::Remote(r) => r.compile(spec),
        }
    }

    fn columns(&self, table: &str) -> Result<Vec<String>> {
        match self {
            ShardPin::Local(cat) => catalog_columns(cat, table),
            ShardPin::Remote(r) => r.columns(table),
        }
    }

    fn rows(&self, table: &str) -> Result<usize> {
        match self {
            ShardPin::Local(cat) => Ok(cat.table(table)?.rows()),
            ShardPin::Remote(r) => ShardBackend::rows(r, table),
        }
    }

    fn register(&mut self, _table: Table) -> Result<()> {
        Err(self.immutable("register"))
    }

    fn drop_table(&mut self, _table: &str) -> Result<()> {
        Err(self.immutable("drop_table"))
    }

    fn create_index(&mut self, _table: &str, _column: &str, _kind: IndexKind) -> Result<()> {
        Err(self.immutable("create_index"))
    }

    fn drop_index(&mut self, _table: &str, _column: &str, _kind: IndexKind) -> Result<()> {
        Err(self.immutable("drop_index"))
    }

    fn replace_column(
        &mut self,
        _table: &str,
        _column: &str,
        _values: Vec<Value>,
    ) -> Result<RebuildReport> {
        Err(self.immutable("replace_column"))
    }

    fn rebuild_column(&mut self, _table: &str, _column: &str) -> Result<RebuildReport> {
        Err(self.immutable("rebuild_column"))
    }

    fn set_exec_options(&mut self, _exec: ExecOptions) -> Result<()> {
        Err(self.immutable("set_exec_options"))
    }

    fn fetch_snapshot(&self) -> Result<Vec<u8>> {
        match self {
            // A pinned local state serializes *its* generation — the
            // frozen one — not whatever the engine has committed since.
            ShardPin::Local(cat) => Ok(mmdb::catalog_to_bytes(cat)),
            ShardPin::Remote(r) => r.fetch_snapshot(),
        }
    }

    fn install_snapshot(&mut self, _bytes: &[u8]) -> Result<()> {
        Err(self.immutable("install_snapshot"))
    }

    fn pin(&self) -> ShardPin {
        self.clone()
    }

    fn observe(&self) -> Result<ShardInfo> {
        match self {
            ShardPin::Local(cat) => Ok(ShardInfo {
                generation: cat.generation(),
                swaps: 0,
                pinned: 0,
                exec: cat.exec_options(),
            }),
            ShardPin::Remote(r) => r.observe(),
        }
    }

    fn describe(&self) -> String {
        match self {
            ShardPin::Local(cat) => format!("in-process (generation {})", cat.generation()),
            ShardPin::Remote(r) => r.describe(),
        }
    }
}
