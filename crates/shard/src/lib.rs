//! # ccindex-shard — sharded catalog with scatter-gather execution
//!
//! The ROADMAP's "Sharding" step: partition tables across N shards by a
//! key column — hash or range, per the Gamma-style shared-nothing
//! designs — so a catalog can exceed one node's memory, while every
//! query keeps answering **byte-identically** to the unsharded
//! [`Database`](mmdb::Database).
//!
//! Two pieces:
//!
//! * [`Partitioner`] — who owns which key: [`HashPartitioner`]
//!   (deterministic FNV, equality probes prune to one shard) and
//!   [`RangePartitioner`] (declared inclusive ranges, both equality and
//!   range probes prune; out-of-range keys fail placement with a typed
//!   [`MmdbError::ShardKeyOutOfRange`](mmdb::MmdbError));
//! * [`ShardedDatabase`] — N per-shard `Database` catalogs behind the
//!   same builder surface (`query(..).filter(..).join(..).group_by(..)`),
//!   splitting updates by shard and executing queries scatter-gather:
//!   probe batches route to the shards that can match, join chunks fan
//!   (or bucket) across inner shards over the shared worker pool, and
//!   per-shard partial aggregates merge at the gather barrier.
//!
//! ```
//! use ccindex_shard::ShardedDatabase;
//! use mmdb::{eq, IndexKind, TableBuilder};
//!
//! let mut db = ShardedDatabase::hash(4)?;
//! db.register(
//!     TableBuilder::new("sales")
//!         .int_column("cust", [1, 2, 1, 3])
//!         .int_column("amount", [10, 40, 25, 99])
//!         .build()?,
//!     "cust", // shard key
//! )?;
//! db.create_index("sales", "cust", IndexKind::Hash)?;
//! let plan = db.query("sales").filter(eq("cust", 1)).plan()?;
//! assert!(plan.explain().contains("(pruned)")); // routed to one shard
//! assert_eq!(plan.execute(&db)?.rids(), &[0, 2]); // global row ids
//! # Ok::<(), mmdb::MmdbError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod backend;
mod partition;
mod remote;
mod sharded;

pub use backend::{
    catalog_column_values, catalog_columns, catalog_compile, catalog_group_partial,
    catalog_join_probe_batch, catalog_select, LocalShard, ShardBackend, ShardInfo, ShardPin,
};
pub use partition::{HashPartitioner, Partitioner, RangePartitioner};
pub use remote::{RemoteShard, SHARD_TIMEOUT_KNOB};
pub use sharded::{
    JoinRouting, ShardRouting, ShardTargets, ShardedDatabase, ShardedHandle, ShardedPlan,
    ShardedQuery, ShardedRebuildReport, ShardedResultSet, ShardedSnapshot, ShardedState,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb::{between, count, eq, on, sum, Database, IndexKind, MmdbError, TableBuilder, Value};

    fn seed_tables(rows: usize) -> (mmdb::Table, mmdb::Table) {
        let sales = TableBuilder::new("sales")
            .int_column("cust", (0..rows).map(|i| (i as i64 * 31) % 40))
            .int_column("amount", (0..rows).map(|i| (i as i64 * 17) % 500))
            .str_column("day", (0..rows).map(|i| ["mon", "tue", "wed"][i % 3]))
            .build()
            .expect("equal columns");
        let customers = TableBuilder::new("customers")
            .int_column("id", 0..40i64)
            .str_column("region", (0..40).map(|i| ["e", "w", "n", "s"][i % 4]))
            .build()
            .expect("equal columns");
        (sales, customers)
    }

    fn unsharded(rows: usize) -> Database {
        let (sales, customers) = seed_tables(rows);
        let mut db = Database::new();
        db.register(sales).unwrap();
        db.register(customers).unwrap();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "cust", IndexKind::Hash).unwrap();
        db.create_index("sales", "cust", IndexKind::BPlusTree)
            .unwrap();
        db.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
        db
    }

    fn sharded<P: Partitioner + 'static>(rows: usize, p: P) -> ShardedDatabase {
        let (sales, customers) = seed_tables(rows);
        let mut db = ShardedDatabase::new(p).unwrap();
        db.register(sales, "cust").unwrap();
        db.register(customers, "id").unwrap();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "cust", IndexKind::Hash).unwrap();
        db.create_index("sales", "cust", IndexKind::BPlusTree)
            .unwrap();
        db.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
        db
    }

    #[test]
    fn registration_splits_rows_and_keeps_global_view() {
        let db = sharded(200, HashPartitioner::new(4).unwrap());
        assert_eq!(db.shards(), 4);
        assert_eq!(db.rows("sales").unwrap(), 200);
        assert_eq!(db.shard_key("sales").unwrap(), "cust");
        assert_eq!(db.tables().collect::<Vec<_>>(), ["customers", "sales"]);
        // Every global row is placed exactly once and the per-shard row
        // counts add up.
        let total: usize = (0..4)
            .map(|s| db.shard(s).table("sales").unwrap().rows())
            .sum();
        assert_eq!(total, 200);
        for g in 0..200u32 {
            let (s, l) = db.placement_of("sales", g).unwrap();
            assert!(s < 4);
            assert!((l as usize) < db.shard(s).table("sales").unwrap().rows());
        }
    }

    #[test]
    fn typed_errors_surface_through_the_sharded_layer() {
        let mut db = sharded(60, HashPartitioner::new(2).unwrap());
        assert_eq!(
            db.query("slaes").run().unwrap_err(),
            MmdbError::UnknownTable {
                table: "slaes".into()
            }
        );
        let (sales, _) = seed_tables(10);
        assert_eq!(
            db.register(sales, "cust").unwrap_err(),
            MmdbError::DuplicateTable {
                table: "sales".into()
            }
        );
        let (sales2, _) = seed_tables(10);
        let mut renamed = TableBuilder::new("sales2");
        for (name, col) in sales2.columns() {
            renamed = renamed.column(
                name,
                (0..sales2.rows() as u32)
                    .map(|r| col.value(r).clone())
                    .collect(),
            );
        }
        assert_eq!(
            db.register(renamed.build().unwrap(), "nokey").unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales2".into(),
                column: "nokey".into()
            }
        );
        assert!(matches!(
            db.create_index("sales", "nocol", IndexKind::Hash)
                .unwrap_err(),
            MmdbError::UnknownColumn { .. }
        ));
        assert!(matches!(
            db.replace_column("sales", "amount", vec![Value::Int(1)])
                .unwrap_err(),
            MmdbError::RaggedColumn { .. }
        ));
    }

    #[test]
    fn out_of_range_keys_fail_registration_with_a_typed_error() {
        // Ranges cover keys 0..=19 only; 'cust' goes up to 39.
        let p = RangePartitioner::int_spans(0, 19, 2).unwrap();
        let mut db = ShardedDatabase::new(p).unwrap();
        let (sales, _) = seed_tables(60);
        let err = db.register(sales, "cust").unwrap_err();
        assert!(
            matches!(err, MmdbError::ShardKeyOutOfRange { shards: 2, .. }),
            "{err:?}"
        );
        // The failed registration left nothing behind.
        assert_eq!(db.tables().count(), 0);
    }

    #[test]
    fn empty_shards_answer_queries() {
        // All 'cust' keys land in [0, 39]; two of the four ranges own
        // keys nobody uses, so those shards hold zero sales rows.
        let p = RangePartitioner::new(vec![
            (Value::Int(0), Value::Int(39)),
            (Value::Int(40), Value::Int(79)),
            (Value::Int(80), Value::Int(119)),
            (Value::Int(120), Value::Int(159)),
        ])
        .unwrap();
        let db = sharded(90, p);
        assert_eq!(db.shard(1).table("sales").unwrap().rows(), 0);
        let un = unsharded(90);
        for (s, u) in [
            (
                db.query("sales").filter(eq("cust", 7)).run().unwrap(),
                un.query("sales").filter(eq("cust", 7)).run().unwrap(),
            ),
            (
                db.query("sales")
                    .filter(between("amount", 50, 300))
                    .run()
                    .unwrap(),
                un.query("sales")
                    .filter(between("amount", 50, 300))
                    .run()
                    .unwrap(),
            ),
        ] {
            assert_eq!(s.rows(), u.rows());
        }
        // A probe into an unowned key range matches nothing (and is not
        // an error).
        assert!(db
            .query("sales")
            .filter(eq("cust", 999))
            .run()
            .unwrap()
            .is_empty());
        // Group over the whole table still merges only non-empty shards.
        let s = db.query("sales").group_by("day", count()).run().unwrap();
        let u = un.query("sales").group_by("day", count()).run().unwrap();
        assert_eq!(s.rows(), u.rows());
    }

    #[test]
    fn routing_prunes_and_explains() {
        let db = sharded(120, RangePartitioner::int_spans(0, 39, 4).unwrap());
        // Equality on the shard key: pruned to exactly one shard.
        let plan = db.query("sales").filter(eq("cust", 5)).plan().unwrap();
        assert_eq!(plan.routing.selected, vec![0]);
        assert!(matches!(
            plan.routing.probe_targets[0],
            ShardTargets::Pruned(ref s) if s == &[0]
        ));
        let text = plan.explain();
        assert!(text.contains("(pruned)"), "{text}");
        assert!(text.contains("range x4"), "{text}");
        assert!(text.contains("per-shard plan:"), "{text}");

        // Range on the shard key: pruned to the overlapping shards.
        let plan = db
            .query("sales")
            .filter(between("cust", 8, 22))
            .plan()
            .unwrap();
        assert_eq!(plan.routing.selected, vec![0, 1, 2]);

        // A non-key filter fans everywhere.
        let plan = db
            .query("sales")
            .filter(between("amount", 0, 10))
            .plan()
            .unwrap();
        assert_eq!(plan.routing.selected, vec![0, 1, 2, 3]);
        assert!(plan.explain().contains("all shards"), "{}", plan.explain());

        // Join on the inner shard key: bucketed; group gathers partials.
        let plan = db
            .query("sales")
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .plan()
            .unwrap();
        assert_eq!(plan.routing.join, Some(JoinRouting::Bucketed));
        let text = plan.explain();
        assert!(text.contains("bucketed by inner shard key id"), "{text}");
        assert!(text.contains("partial aggregates"), "{text}");

        // Join on a non-key inner column: fanned.
        let db2 = {
            let (sales, customers) = seed_tables(30);
            let mut db2 = ShardedDatabase::hash(3).unwrap();
            db2.register(sales, "amount").unwrap();
            db2.register(customers, "region").unwrap();
            db2.create_index("customers", "id", IndexKind::FullCss)
                .unwrap();
            db2
        };
        let plan = db2
            .query("sales")
            .join("customers", on("cust", "id"))
            .plan()
            .unwrap();
        assert_eq!(plan.routing.join, Some(JoinRouting::Fanned));
        assert!(
            plan.explain().contains("fanned to all"),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn hash_and_range_results_match_the_unsharded_engine() {
        let rows = 240;
        let un = unsharded(rows);
        let hash_db = sharded(rows, HashPartitioner::new(3).unwrap());
        let range_db = sharded(rows, RangePartitioner::int_spans(0, 39, 3).unwrap());
        for db in [&hash_db, &range_db] {
            assert_eq!(
                db.query("sales")
                    .filter(eq("cust", 9))
                    .run()
                    .unwrap()
                    .rows(),
                un.query("sales")
                    .filter(eq("cust", 9))
                    .run()
                    .unwrap()
                    .rows()
            );
            assert_eq!(
                db.query("sales")
                    .filter(between("amount", 100, 400))
                    .filter(eq("cust", 2))
                    .run()
                    .unwrap()
                    .rows(),
                un.query("sales")
                    .filter(between("amount", 100, 400))
                    .filter(eq("cust", 2))
                    .run()
                    .unwrap()
                    .rows()
            );
            assert_eq!(
                db.query("sales")
                    .filter(between("amount", 40, 360))
                    .join("customers", on("cust", "id"))
                    .run()
                    .unwrap()
                    .rows(),
                un.query("sales")
                    .filter(between("amount", 40, 360))
                    .join("customers", on("cust", "id"))
                    .run()
                    .unwrap()
                    .rows()
            );
            assert_eq!(
                db.query("sales")
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .unwrap()
                    .rows(),
                un.query("sales")
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .unwrap()
                    .rows()
            );
        }
    }

    #[test]
    fn values_decode_through_owning_shards() {
        let rows = 90;
        let un = unsharded(rows);
        let db = sharded(rows, HashPartitioner::new(4).unwrap());
        let s = db.query("sales").filter(eq("cust", 3)).run().unwrap();
        let u = un.query("sales").filter(eq("cust", 3)).run().unwrap();
        assert_eq!(s.values("amount").unwrap(), u.values("amount").unwrap());
        let s = db
            .query("sales")
            .filter(eq("cust", 3))
            .join("customers", on("cust", "id"))
            .run()
            .unwrap();
        let u = un
            .query("sales")
            .filter(eq("cust", 3))
            .join("customers", on("cust", "id"))
            .run()
            .unwrap();
        assert_eq!(s.values("region").unwrap(), u.values("region").unwrap());
        assert_eq!(s.values("amount").unwrap(), u.values("amount").unwrap());
        let grouped = db.query("sales").group_by("day", count()).run().unwrap();
        assert!(matches!(
            grouped.values("day").unwrap_err(),
            MmdbError::Unsupported { .. }
        ));
    }

    #[test]
    fn replace_column_splits_updates_by_shard() {
        let rows = 80;
        let mut db = sharded(rows, HashPartitioner::new(4).unwrap());
        let mut un = unsharded(rows);
        let new_amounts: Vec<Value> = (0..rows).map(|i| Value::Int((i as i64 * 7) % 90)).collect();
        let report = db
            .replace_column("sales", "amount", new_amounts.clone())
            .unwrap();
        assert!(!report.repartitioned);
        assert_eq!(report.per_shard.len(), 4);
        un.replace_column("sales", "amount", new_amounts).unwrap();
        assert_eq!(
            db.query("sales")
                .filter(between("amount", 10, 60))
                .run()
                .unwrap()
                .rows(),
            un.query("sales")
                .filter(between("amount", 10, 60))
                .run()
                .unwrap()
                .rows()
        );
    }

    #[test]
    fn replacing_the_shard_key_repartitions() {
        let rows = 80;
        let mut db = sharded(rows, HashPartitioner::new(4).unwrap());
        let mut un = unsharded(rows);
        // New keys move most rows to different shards.
        let new_keys: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 13 + 5) % 40))
            .collect();
        let report = db
            .replace_column("sales", "cust", new_keys.clone())
            .unwrap();
        assert!(report.repartitioned);
        un.replace_column("sales", "cust", new_keys).unwrap();
        // Queries through the re-partitioned catalog still match.
        assert_eq!(
            db.query("sales")
                .filter(eq("cust", 18))
                .run()
                .unwrap()
                .rows(),
            un.query("sales")
                .filter(eq("cust", 18))
                .run()
                .unwrap()
                .rows()
        );
        assert_eq!(
            db.query("sales")
                .join("customers", on("cust", "id"))
                .group_by("region", sum("amount"))
                .run()
                .unwrap()
                .rows(),
            un.query("sales")
                .join("customers", on("cust", "id"))
                .group_by("region", sum("amount"))
                .run()
                .unwrap()
                .rows()
        );
        // Re-partitioning onto a range partitioner that cannot own the
        // new keys is a typed error that leaves the catalog answering.
        let mut rdb = sharded(rows, RangePartitioner::int_spans(0, 39, 2).unwrap());
        let bad: Vec<Value> = (0..rows).map(|i| Value::Int(i as i64 * 50)).collect();
        assert!(matches!(
            rdb.replace_column("sales", "cust", bad).unwrap_err(),
            MmdbError::ShardKeyOutOfRange { .. }
        ));
        // The failed replacement left the catalog untouched: it still
        // answers with its original rows (compare against a fresh
        // unsharded build, since `un` was key-replaced above).
        assert_eq!(
            rdb.query("sales")
                .filter(eq("cust", 9))
                .run()
                .unwrap()
                .rows(),
            unsharded(rows)
                .query("sales")
                .filter(eq("cust", 9))
                .run()
                .unwrap()
                .rows()
        );
    }

    #[test]
    fn scatter_probe_batches_match_the_unsharded_engine() {
        let rows = 150;
        let un = unsharded(rows);
        for db in [
            sharded(rows, HashPartitioner::new(4).unwrap()),
            sharded(rows, RangePartitioner::int_spans(0, 39, 4).unwrap()),
        ] {
            // Point probes on the shard key (pruned routing), including
            // duplicates and a key no shard owns under range layout.
            let values: Vec<Value> = [3i64, 17, 3, 999, 0].map(Value::Int).to_vec();
            let got = db.point_probe_batch("sales", "cust", &values).unwrap();
            let want = un.point_probe_batch("sales", "cust", &values).unwrap();
            assert_eq!(got, want, "{}", db.partitioner());
            // ... and on a non-key column (fanned routing).
            let values: Vec<Value> = [100i64, 317, 9_999].map(Value::Int).to_vec();
            assert_eq!(
                db.point_probe_batch("sales", "amount", &values).unwrap(),
                un.point_probe_batch("sales", "amount", &values).unwrap(),
                "{}",
                db.partitioner()
            );
            // Range probes on key and non-key columns, with empty and
            // inverted ranges in the batch.
            let ranges: Vec<(Value, Value)> = [(5i64, 20i64), (39, 10), (-5, 2)]
                .map(|(lo, hi)| (Value::Int(lo), Value::Int(hi)))
                .to_vec();
            assert_eq!(
                db.range_probe_batch("sales", "cust", &ranges).unwrap(),
                un.range_probe_batch("sales", "cust", &ranges).unwrap(),
                "{}",
                db.partitioner()
            );
            assert_eq!(
                db.range_probe_batch("sales", "amount", &ranges).unwrap(),
                un.range_probe_batch("sales", "amount", &ranges).unwrap(),
                "{}",
                db.partitioner()
            );
            // Each slot also equals its per-request query.
            for (v, rids) in values.iter().zip(
                db.point_probe_batch("sales", "amount", &values)
                    .unwrap()
                    .iter(),
            ) {
                let one = db
                    .query("sales")
                    .filter(eq("amount", v.clone()))
                    .run()
                    .unwrap();
                assert_eq!(rids, one.rids(), "value {v}");
            }
            // Typed errors surface unchanged.
            assert!(matches!(
                db.point_probe_batch("nope", "cust", &[Value::Int(1)])
                    .unwrap_err(),
                MmdbError::UnknownTable { .. }
            ));
            assert!(matches!(
                db.point_probe_batch("sales", "day", &[Value::from("mon")])
                    .unwrap_err(),
                MmdbError::NoIndex { .. }
            ));
        }
    }

    #[test]
    fn probe_batch_validation_beats_routing() {
        // The access path resolves before routing: a misconfigured
        // column must fail typed even when every probe routes to no
        // shard (unowned keys, inverted ranges, or an empty batch) —
        // exactly like the per-request query path would.
        let (sales, customers) = seed_tables(30);
        let mut db = ShardedDatabase::new(RangePartitioner::int_spans(0, 39, 2).unwrap()).unwrap();
        db.register(sales, "cust").unwrap();
        db.register(customers, "id").unwrap();
        // No index on cust yet: every shape fails NoIndex/NoOrderedIndex.
        assert!(matches!(
            db.point_probe_batch("sales", "cust", &[Value::Int(999)])
                .unwrap_err(),
            MmdbError::NoIndex { .. }
        ));
        db.create_index("sales", "cust", IndexKind::Hash).unwrap();
        // Hash-only column: ranges fail even when inverted (routes nowhere).
        assert!(matches!(
            db.range_probe_batch("sales", "cust", &[(Value::Int(50), Value::Int(10))])
                .unwrap_err(),
            MmdbError::NoOrderedIndex { .. }
        ));
        // Empty batches still validate their names.
        assert!(matches!(
            db.point_probe_batch("sales", "nocol", &[]).unwrap_err(),
            MmdbError::UnknownColumn { .. }
        ));
        // A well-formed batch of only-unowned keys answers empty, not
        // an error.
        assert_eq!(
            db.point_probe_batch("sales", "cust", &[Value::Int(999)])
                .unwrap(),
            vec![Vec::<u32>::new()]
        );
    }

    #[test]
    fn stale_plans_fail_with_a_typed_error() {
        // A plan compiled for one shard count indexes that catalog's
        // shards; executing it elsewhere must fail typed, not panic.
        let db4 = sharded(60, HashPartitioner::new(4).unwrap());
        let db2 = sharded(60, HashPartitioner::new(2).unwrap());
        let plan = db4.query("sales").filter(eq("cust", 1)).plan().unwrap();
        let err = plan.execute(&db2).unwrap_err();
        assert!(matches!(err, MmdbError::Unsupported { .. }), "{err:?}");
        assert!(err.to_string().contains("recompile"), "{err}");
    }

    #[test]
    fn single_shard_catalog_is_the_identity() {
        let rows = 50;
        let un = unsharded(rows);
        let db = sharded(rows, HashPartitioner::new(1).unwrap());
        assert_eq!(
            db.query("sales").run().unwrap().rids(),
            un.query("sales").run().unwrap().rids()
        );
        let plan = db.query("sales").filter(eq("cust", 1)).plan().unwrap();
        assert_eq!(plan.routing.selected, vec![0]);
    }

    #[test]
    fn snapshots_pin_composed_generations_across_commits() {
        let rows = 80;
        let mut db = sharded(rows, HashPartitioner::new(4).unwrap());
        let before = db.snapshot();
        assert_eq!(before.generation(), db.generation());
        let old_rids = before
            .query("sales")
            .filter(eq("cust", 3))
            .run()
            .unwrap()
            .rids()
            .to_vec();

        // Commit a non-key replacement; the pinned snapshot keeps
        // answering from its generation while new snapshots see the new
        // values.
        let gen_before = db.generation();
        let new_amounts: Vec<Value> = (0..rows).map(|i| Value::Int((i as i64 * 7) % 90)).collect();
        db.replace_column("sales", "amount", new_amounts).unwrap();
        assert_eq!(db.generation(), gen_before + 1, "one commit per cycle");
        let after = db.snapshot();
        assert_eq!(
            before
                .query("sales")
                .filter(eq("cust", 3))
                .run()
                .unwrap()
                .rids(),
            &old_rids[..],
            "pinned snapshot is immutable"
        );
        assert_ne!(
            before
                .query("sales")
                .filter(between("amount", 10, 60))
                .run()
                .unwrap()
                .rows(),
            after
                .query("sales")
                .filter(between("amount", 10, 60))
                .run()
                .unwrap()
                .rows(),
            "new snapshot sees the replacement"
        );
        assert_eq!(db.pinned_snapshots(), 2);
        drop(before);
        drop(after);
        assert_eq!(db.pinned_snapshots(), 0);
    }

    #[test]
    fn snapshots_survive_a_repartition_whole() {
        // A shard-key replacement moves rows between shards; a snapshot
        // pinned before the move must keep the *old* placement and the
        // old per-shard tables together — never a mix.
        let rows = 80;
        let mut db = sharded(rows, HashPartitioner::new(4).unwrap());
        let before = db.snapshot();
        let old = before
            .query("sales")
            .filter(eq("cust", 18))
            .run()
            .unwrap()
            .rids()
            .to_vec();
        let new_keys: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 13 + 5) % 40))
            .collect();
        db.replace_column("sales", "cust", new_keys.clone())
            .unwrap();
        assert_eq!(
            before
                .query("sales")
                .filter(eq("cust", 18))
                .run()
                .unwrap()
                .rids(),
            &old[..]
        );
        // Probe batches through the old snapshot agree with an unsharded
        // catalog that never saw the update.
        let un = unsharded(rows);
        let values: Vec<Value> = [3i64, 18, 999].map(Value::Int).to_vec();
        assert_eq!(
            before.point_probe_batch("sales", "cust", &values).unwrap(),
            un.point_probe_batch("sales", "cust", &values).unwrap()
        );
        // And the new snapshot agrees with an unsharded catalog that did.
        let mut un2 = unsharded(rows);
        un2.replace_column("sales", "cust", new_keys).unwrap();
        assert_eq!(
            db.snapshot()
                .point_probe_batch("sales", "cust", &values)
                .unwrap(),
            un2.point_probe_batch("sales", "cust", &values).unwrap()
        );
    }

    #[test]
    fn handles_share_the_commit_slot_across_threads() {
        let rows = 60;
        let mut db = sharded(rows, HashPartitioner::new(2).unwrap());
        let handle = db.handle();
        let want = db
            .query("sales")
            .filter(eq("cust", 9))
            .run()
            .unwrap()
            .rids()
            .to_vec();
        std::thread::scope(|scope| {
            let reader = scope.spawn({
                let handle = handle.clone();
                move || {
                    let snap = handle.snapshot();
                    snap.query("sales")
                        .filter(eq("cust", 9))
                        .run()
                        .unwrap()
                        .rids()
                        .to_vec()
                }
            });
            assert_eq!(reader.join().expect("reader"), want);
        });
        let gen = handle.generation();
        db.create_index("sales", "day", IndexKind::Hash).unwrap();
        assert_eq!(handle.generation(), gen + 1);
        assert!(handle.swaps() > 0);
        // The new generation serves the new index.
        assert_eq!(
            handle
                .snapshot()
                .point_probe_batch("sales", "day", &[Value::from("mon")])
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn failed_mutations_do_not_commit_a_generation() {
        let mut db = sharded(40, HashPartitioner::new(2).unwrap());
        let (gen, swaps) = (db.generation(), db.swap_count());
        assert!(db
            .replace_column("sales", "amount", vec![Value::Int(1)])
            .is_err());
        assert!(db.create_index("sales", "nocol", IndexKind::Hash).is_err());
        let (sales, _) = seed_tables(10);
        assert!(db.register(sales, "cust").is_err());
        assert_eq!((db.generation(), db.swap_count()), (gen, swaps));
    }
}
