//! Key-space partitioners: who owns which row.
//!
//! A [`Partitioner`] maps a table's shard-key values onto `0..shards`.
//! It answers three questions, in increasing order of selectivity:
//! placement (`shard_of`: where does a *row* live — a typed error when
//! no shard owns the key), equality routing (`probe_shards`: which
//! shards could an `=` probe match — empty when none can), and range
//! routing (`range_shards`: which shards could a `[lo, hi]` probe
//! match). The sharded executor uses the latter two to *prune* the
//! scatter set; the conservative defaults (route everywhere) are always
//! correct, so a custom partitioner only overrides what it can prune.

use mmdb::{MmdbError, Result, Value};

/// A deterministic mapping from shard-key values to shard indexes.
pub trait Partitioner: std::fmt::Debug + Send + Sync {
    /// Number of shards this partitioner declares (always ≥ 1).
    fn shards(&self) -> usize;

    /// The shard that owns rows keyed by `key` — the placement function
    /// used when registering tables and splitting update batches. Fails
    /// with [`MmdbError::ShardKeyOutOfRange`] when no shard owns the key.
    fn shard_of(&self, key: &Value) -> Result<usize>;

    /// Shards an equality probe for `key` could match. The default
    /// derives from placement: the owning shard, or no shard at all when
    /// the key is outside the partitioned key space (such a probe can
    /// match no stored row, so an empty route is the correct answer —
    /// not an error).
    fn probe_shards(&self, key: &Value) -> Vec<usize> {
        match self.shard_of(key) {
            Ok(s) => vec![s],
            Err(_) => Vec::new(),
        }
    }

    /// Shards whose keys can fall in the inclusive range `[lo, hi]`,
    /// ascending. The conservative default routes to every shard (a hash
    /// partitioner scatters neighbouring keys, so it cannot prune
    /// ranges); order-preserving partitioners override this.
    fn range_shards(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        let _ = (lo, hi);
        (0..self.shards()).collect()
    }

    /// One-line description for plan explain output, e.g. `hash x4`.
    fn describe(&self) -> String;
}

/// Multiplicative-FNV hash partitioning: shard = `fnv1a(key) % shards`.
///
/// The hash is a fixed-key FNV-1a over a canonical byte encoding of the
/// value, so placement is deterministic across processes and platforms
/// (a catalog written by one node routes identically on another).
/// Equality probes prune to exactly one shard; range probes cannot prune
/// (neighbouring keys scatter) and fan to all shards.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    /// A hash partitioner over `shards` shards (must be ≥ 1).
    pub fn new(shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(MmdbError::InvalidPartitioner {
                reason: "shard count must be at least 1".into(),
            });
        }
        Ok(Self { shards })
    }
}

/// Fixed-key FNV-1a over a canonical encoding: a type tag byte, then the
/// little-endian integer bytes or the UTF-8 string bytes.
fn fnv1a(value: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    match value {
        Value::Int(i) => {
            eat(0);
            for b in i.to_le_bytes() {
                eat(b);
            }
        }
        Value::Str(s) => {
            eat(1);
            for &b in s.as_bytes() {
                eat(b);
            }
        }
    }
    h
}

impl Partitioner for HashPartitioner {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, key: &Value) -> Result<usize> {
        Ok((fnv1a(key) % self.shards as u64) as usize)
    }

    fn describe(&self) -> String {
        format!("hash x{}", self.shards)
    }
}

/// Range partitioning over explicitly declared inclusive key ranges,
/// one per shard: shard `i` owns every key in `ranges[i]`.
///
/// Ranges must be ascending and non-overlapping (validated at
/// construction with a typed [`MmdbError::InvalidPartitioner`]); they
/// need not be contiguous, and a shard whose range ends up holding no
/// rows is fine — an **empty shard** answers every query with empty
/// partial results. A key between or beyond the declared ranges has no
/// owner: placement fails with [`MmdbError::ShardKeyOutOfRange`]
/// (a typed error, never a panic), while equality/range *probes* for
/// such keys simply route to no shard / only the overlapping shards.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    ranges: Vec<(Value, Value)>,
}

impl RangePartitioner {
    /// A range partitioner owning the given inclusive `(lo, hi)` ranges,
    /// one shard per range in the given order.
    pub fn new(ranges: Vec<(Value, Value)>) -> Result<Self> {
        if ranges.is_empty() {
            return Err(MmdbError::InvalidPartitioner {
                reason: "a range partitioner needs at least one range".into(),
            });
        }
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            if lo > hi {
                return Err(MmdbError::InvalidPartitioner {
                    reason: format!("range {i} is inverted: [{lo}, {hi}]"),
                });
            }
            if let Some((_, prev_hi)) = ranges.get(i.wrapping_sub(1)) {
                if prev_hi >= lo {
                    return Err(MmdbError::InvalidPartitioner {
                        reason: format!(
                            "range {i} starting at {lo} overlaps or precedes \
                             the previous range ending at {prev_hi}"
                        ),
                    });
                }
            }
        }
        Ok(Self { ranges })
    }

    /// Convenience: `shards` equal-width integer ranges covering
    /// `[lo, hi]` inclusive (the last shard absorbs the remainder).
    pub fn int_spans(lo: i64, hi: i64, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(MmdbError::InvalidPartitioner {
                reason: "shard count must be at least 1".into(),
            });
        }
        if lo > hi {
            return Err(MmdbError::InvalidPartitioner {
                reason: format!("inverted key span [{lo}, {hi}]"),
            });
        }
        // Near-equal widths: the first `extra` shards take one more key,
        // so any span with at least one key per shard is accepted.
        let span = hi - lo + 1;
        let base = span / shards as i64;
        let extra = span % shards as i64;
        if base == 0 {
            return Err(MmdbError::InvalidPartitioner {
                reason: format!("span [{lo}, {hi}] is too narrow for {shards} non-empty shards"),
            });
        }
        let mut ranges = Vec::with_capacity(shards);
        let mut start = lo;
        for s in 0..shards as i64 {
            let width = base + i64::from(s < extra);
            ranges.push((Value::Int(start), Value::Int(start + width - 1)));
            start += width;
        }
        debug_assert_eq!(start, hi + 1);
        Self::new(ranges)
    }

    /// The declared ranges, in shard order.
    pub fn ranges(&self) -> &[(Value, Value)] {
        &self.ranges
    }
}

impl Partitioner for RangePartitioner {
    fn shards(&self) -> usize {
        self.ranges.len()
    }

    fn shard_of(&self, key: &Value) -> Result<usize> {
        // Ranges are ascending and disjoint: find the first range whose
        // upper bound admits the key, then check its lower bound.
        let i = self.ranges.partition_point(|(_, hi)| hi < key);
        match self.ranges.get(i) {
            Some((lo, _)) if lo <= key => Ok(i),
            _ => Err(MmdbError::ShardKeyOutOfRange {
                key: key.to_string(),
                shards: self.ranges.len(),
            }),
        }
    }

    fn range_shards(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        if lo > hi {
            return Vec::new();
        }
        // The declared ranges are ascending and disjoint, so the shards
        // a probe `[lo, hi]` can touch form one contiguous span: those
        // with `shard_hi >= lo` are a suffix, those with `shard_lo <=
        // hi` are a prefix, and the overlap is everything between the
        // two partition points — found in O(log shards) instead of the
        // per-probe linear scan over every shard.
        let start = self.ranges.partition_point(|(_, shi)| shi < lo);
        let end = self.ranges.partition_point(|(slo, _)| slo <= hi);
        (start..end).collect()
    }

    fn describe(&self) -> String {
        let spans: Vec<String> = self
            .ranges
            .iter()
            .map(|(lo, hi)| format!("[{lo}, {hi}]"))
            .collect();
        format!("range x{}: {}", self.ranges.len(), spans.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_total() {
        let p = HashPartitioner::new(4).unwrap();
        assert_eq!(p.shards(), 4);
        for v in [Value::Int(-5), Value::Int(0), Value::Str("east".into())] {
            let s = p.shard_of(&v).unwrap();
            assert!(s < 4);
            assert_eq!(p.shard_of(&v).unwrap(), s, "stable");
            assert_eq!(p.probe_shards(&v), vec![s], "eq probes prune to one");
        }
        // Ranges cannot prune under hashing.
        assert_eq!(
            p.range_shards(&Value::Int(1), &Value::Int(2)),
            vec![0, 1, 2, 3]
        );
        assert!(p.describe().contains("hash x4"));
        assert!(matches!(
            HashPartitioner::new(0).unwrap_err(),
            MmdbError::InvalidPartitioner { .. }
        ));
    }

    #[test]
    fn hash_spreads_across_shards() {
        let p = HashPartitioner::new(8).unwrap();
        let mut hit = [false; 8];
        for i in 0..1000i64 {
            hit[p.shard_of(&Value::Int(i)).unwrap()] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard receives keys");
    }

    #[test]
    fn range_partitioner_places_and_prunes() {
        let p = RangePartitioner::new(vec![
            (Value::Int(0), Value::Int(9)),
            (Value::Int(10), Value::Int(19)),
            (Value::Int(30), Value::Int(39)), // gap: 20..=29 owned by nobody
        ])
        .unwrap();
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of(&Value::Int(0)).unwrap(), 0);
        assert_eq!(p.shard_of(&Value::Int(19)).unwrap(), 1);
        assert_eq!(p.shard_of(&Value::Int(35)).unwrap(), 2);
        // Out-of-range placement is a typed error naming the key.
        let err = p.shard_of(&Value::Int(25)).unwrap_err();
        assert_eq!(
            err,
            MmdbError::ShardKeyOutOfRange {
                key: "25".into(),
                shards: 3
            }
        );
        assert!(p.shard_of(&Value::Int(40)).is_err());
        assert!(p.shard_of(&Value::Int(-1)).is_err());
        // ... but an equality probe for it just routes nowhere.
        assert!(p.probe_shards(&Value::Int(25)).is_empty());
        // Range pruning keeps only intersecting shards.
        assert_eq!(p.range_shards(&Value::Int(5), &Value::Int(12)), vec![0, 1]);
        assert_eq!(p.range_shards(&Value::Int(20), &Value::Int(29)), vec![]);
        assert_eq!(
            p.range_shards(&Value::Int(-100), &Value::Int(100)),
            vec![0, 1, 2]
        );
        assert_eq!(p.range_shards(&Value::Int(12), &Value::Int(5)), vec![]);
        assert!(p.describe().starts_with("range x3"));
    }

    #[test]
    fn range_shards_matches_linear_reference_on_boundary_matrix() {
        // The linear scan the partition-point span replaced: keep shard
        // i iff its declared range intersects [lo, hi]. Routing must
        // stay byte-identical across the full boundary matrix.
        fn linear(p: &RangePartitioner, lo: &Value, hi: &Value) -> Vec<usize> {
            if lo > hi {
                return Vec::new();
            }
            (0..p.ranges().len())
                .filter(|&i| {
                    let (slo, shi) = &p.ranges()[i];
                    slo <= hi && lo <= shi
                })
                .collect()
        }
        // Gapped layout: every boundary class is reachable (before the
        // first range, on edges, inside gaps, past the last range).
        let gapped = RangePartitioner::new(vec![
            (Value::Int(0), Value::Int(9)),
            (Value::Int(10), Value::Int(19)),
            (Value::Int(30), Value::Int(39)),
        ])
        .unwrap();
        let contiguous = RangePartitioner::int_spans(0, 39, 4).unwrap();
        let single = RangePartitioner::new(vec![(Value::Int(5), Value::Int(5))]).unwrap();
        let probes: Vec<i64> = vec![
            -100, -1, 0, 1, 4, 5, 6, 9, 10, 11, 19, 20, 25, 29, 30, 35, 39, 40, 100,
        ];
        for p in [&gapped, &contiguous, &single] {
            for &a in &probes {
                for &b in &probes {
                    // The full matrix includes inverted bounds (a > b),
                    // which must route nowhere on both paths.
                    let (lo, hi) = (Value::Int(a), Value::Int(b));
                    let got = p.range_shards(&lo, &hi);
                    assert_eq!(got, linear(p, &lo, &hi), "{} [{a}, {b}]", p.describe());
                    // The span is contiguous and every listed shard is
                    // in bounds, ascending.
                    assert!(got.windows(2).all(|w| w[1] == w[0] + 1), "[{a}, {b}]");
                    assert!(got.iter().all(|&s| s < p.shards()), "[{a}, {b}]");
                }
            }
        }
        // String-keyed ranges take the same code path.
        let s = RangePartitioner::new(vec![
            (Value::from("a"), Value::from("f")),
            (Value::from("g"), Value::from("m")),
        ])
        .unwrap();
        assert_eq!(
            s.range_shards(&Value::from("e"), &Value::from("h")),
            linear(&s, &Value::from("e"), &Value::from("h"))
        );
        assert_eq!(s.range_shards(&Value::from("z"), &Value::from("a")), vec![]);
    }

    #[test]
    fn range_partitioner_rejects_bad_specs() {
        for (ranges, what) in [
            (vec![], "empty"),
            (vec![(Value::Int(5), Value::Int(1))], "inverted"),
            (
                vec![
                    (Value::Int(0), Value::Int(9)),
                    (Value::Int(9), Value::Int(20)),
                ],
                "overlapping",
            ),
            (
                vec![
                    (Value::Int(10), Value::Int(19)),
                    (Value::Int(0), Value::Int(9)),
                ],
                "descending",
            ),
        ] {
            assert!(
                matches!(
                    RangePartitioner::new(ranges.clone()),
                    Err(MmdbError::InvalidPartitioner { .. })
                ),
                "{what}: {ranges:?}"
            );
        }
    }

    #[test]
    fn int_spans_cover_the_whole_span() {
        let p = RangePartitioner::int_spans(0, 99, 4).unwrap();
        assert_eq!(p.shards(), 4);
        for k in 0..100i64 {
            assert!(p.shard_of(&Value::Int(k)).is_ok(), "key {k}");
        }
        assert!(p.shard_of(&Value::Int(100)).is_err());
        // Uneven width: the last shard absorbs the remainder.
        let p = RangePartitioner::int_spans(0, 10, 4).unwrap();
        assert_eq!(p.shards(), 4);
        for k in 0..=10i64 {
            assert!(p.shard_of(&Value::Int(k)).is_ok(), "key {k}");
        }
        // A span with exactly one key per shard (and a little remainder)
        // is feasible and must not be rejected.
        let p = RangePartitioner::int_spans(0, 4, 4).unwrap();
        assert_eq!(p.shards(), 4);
        for k in 0..=4i64 {
            assert!(p.shard_of(&Value::Int(k)).is_ok(), "key {k}");
        }
        let p = RangePartitioner::int_spans(0, 8, 4).unwrap();
        for k in 0..=8i64 {
            assert!(p.shard_of(&Value::Int(k)).is_ok(), "key {k}");
        }
        assert!(RangePartitioner::int_spans(0, 1, 8).is_err(), "too narrow");
        assert!(RangePartitioner::int_spans(5, 1, 2).is_err(), "inverted");
        assert!(RangePartitioner::int_spans(0, 9, 0).is_err(), "zero shards");
    }
}
