//! The remote shard client: a [`ShardBackend`] that speaks the
//! `ccindex-wire` protocol to a `ShardServer` over plain blocking TCP.
//!
//! One request, one response, one frame each — the serving layer's
//! batch-formation windows (PR 5) already amortise per-request costs,
//! so the transport stays synchronous and dependency-free. Connection
//! handling:
//!
//! * [`RemoteShard::connect`] dials with **bounded retry** (5 attempts,
//!   doubling backoff from 10 ms) and performs a `Hello` handshake, so
//!   a version-skewed or absent server is a typed
//!   [`MmdbError::Transport`] at construction, not a hang at first
//!   query.
//! * Every request carries the **deadline** from
//!   `CCINDEX_SHARD_TIMEOUT_MS` (default 30 000; `0` disables) as the
//!   socket's read/write timeout. The knob is parsed by the shared
//!   [`parse_knob`] rule and fails loudly on garbage.
//! * The client caches one connection behind a mutex (scatter jobs
//!   target distinct shards, so cross-shard fan-out still runs fully in
//!   parallel); any I/O or framing error invalidates the cached
//!   connection so the next call redials — the failed request itself is
//!   **not** retried, because the server may have applied a mutation
//!   before the connection died.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use ccindex_obs as obs;
use ccindex_parallel::sync::Arc as ObsArc;
use ccindex_wire::{self as wire, OneRequest, ShardRequest, ShardResponse, Spec};
use mmdb::plan::{parse_knob, Plan};
use mmdb::{
    AggFn, ExecOptions, GroupRow, IndexKind, MmdbError, RebuildReport, Result, ResultRows, Table,
    TransportFault, Value,
};

use crate::backend::{ShardBackend, ShardInfo, ShardPin};

/// Request deadline knob, in milliseconds. `0` disables the deadline.
pub const SHARD_TIMEOUT_KNOB: &str = "CCINDEX_SHARD_TIMEOUT_MS";

/// Default request deadline when the knob is unset.
const DEFAULT_TIMEOUT: Duration = Duration::from_millis(30_000);

/// Connect attempts before giving up (the first try plus retries).
const CONNECT_ATTEMPTS: u32 = 5;

/// Backoff before the second connect attempt; doubles per retry.
const INITIAL_BACKOFF: Duration = Duration::from_millis(10);

/// Snapshot transfer chunk size. Each chunk rides its own frame (with
/// its own payload CRC) *and* carries a per-chunk CRC over the snapshot
/// bytes, so a reassembly bug on either side is caught before install.
pub const SNAPSHOT_CHUNK: usize = 4 << 20;

fn transport(endpoint: &str, fault: TransportFault, detail: String) -> MmdbError {
    MmdbError::Transport {
        endpoint: endpoint.to_owned(),
        fault,
        detail,
        attempts: 0,
        elapsed_ms: 0,
    }
}

/// A shard that lives behind a socket: the remote implementation of
/// [`ShardBackend`]. Cloning yields an independent client to the same
/// server (with its own connection), which is how a remote shard is
/// pinned into a composed snapshot.
#[derive(Debug)]
pub struct RemoteShard {
    addr: String,
    timeout: Option<Duration>,
    conn: Mutex<Option<TcpStream>>,
    /// `transport.retries` from the coordinator's registry, installed
    /// by [`ShardBackend::install_metrics`]; counts redial attempts
    /// beyond the first, per dial.
    retries: Option<ObsArc<obs::Counter>>,
}

impl Clone for RemoteShard {
    fn clone(&self) -> Self {
        Self {
            addr: self.addr.clone(),
            timeout: self.timeout,
            conn: Mutex::new(None),
            retries: self.retries.clone(),
        }
    }
}

impl RemoteShard {
    /// Connect to a shard server, with bounded retry and a `Hello`
    /// handshake. The deadline comes from `CCINDEX_SHARD_TIMEOUT_MS`
    /// (milliseconds; `0` disables; garbage is a typed
    /// [`MmdbError::InvalidExecOption`]).
    pub fn connect(addr: impl Into<String>) -> Result<Self> {
        let timeout = match parse_knob(SHARD_TIMEOUT_KNOB, std::env::var(SHARD_TIMEOUT_KNOB).ok())?
        {
            None => Some(DEFAULT_TIMEOUT),
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms as u64)),
        };
        let shard = Self {
            addr: addr.into(),
            timeout,
            conn: Mutex::new(None),
            retries: None,
        };
        // Validate liveness and protocol version up front: a skewed
        // server answers with a different frame version, which
        // `read_frame` rejects as a typed Transport error here rather
        // than mid-query.
        shard.observe()?;
        Ok(shard)
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Count redials (attempts beyond the first) against the installed
    /// `transport.retries` counter, if any.
    fn note_retries(&self, attempts: u32) {
        if attempts > 1 {
            if let Some(retries) = &self.retries {
                retries.add(u64::from(attempts - 1));
            }
        }
    }

    fn dial(&self) -> Result<TcpStream> {
        let started = std::time::Instant::now();
        let mut delay = INITIAL_BACKOFF;
        let mut last = String::from("no attempt made");
        for attempt in 1..=CONNECT_ATTEMPTS {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    self.note_retries(attempt);
                    // Latency over throughput: frames are small.
                    let _ = stream.set_nodelay(true);
                    stream
                        .set_read_timeout(self.timeout)
                        .and_then(|()| stream.set_write_timeout(self.timeout))
                        .map_err(|e| MmdbError::Transport {
                            endpoint: self.addr.clone(),
                            fault: TransportFault::Connect,
                            detail: format!("configuring deadline: {e}"),
                            attempts: attempt,
                            elapsed_ms: elapsed_ms(&started),
                        })?;
                    return Ok(stream);
                }
                Err(e) => {
                    last = e.to_string();
                    if attempt < CONNECT_ATTEMPTS {
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2);
                    }
                }
            }
        }
        self.note_retries(CONNECT_ATTEMPTS);
        Err(MmdbError::Transport {
            endpoint: self.addr.clone(),
            fault: TransportFault::Connect,
            detail: format!("after {CONNECT_ATTEMPTS} attempts: {last}"),
            attempts: CONNECT_ATTEMPTS,
            elapsed_ms: elapsed_ms(&started),
        })
    }

    fn call(&self, req: &ShardRequest) -> Result<ShardResponse> {
        self.call_traced(req, 0).map(|(resp, _)| resp)
    }

    /// One request/response exchange; `span_id` ≠ 0 stamps the trace
    /// field so the server answers with its timing breakdown.
    fn call_traced(
        &self,
        req: &ShardRequest,
        span_id: u64,
    ) -> Result<(ShardResponse, Option<obs::SpanNode>)> {
        let mut guard = match self.conn.lock() {
            Ok(g) => g,
            // A poisoned lock means a panic elsewhere; the connection
            // state itself is still just an Option we are about to
            // validate, so keep serving.
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.is_none() {
            *guard = Some(self.dial()?);
        }
        let stream = match guard.as_mut() {
            Some(s) => s,
            None => {
                return Err(transport(
                    &self.addr,
                    TransportFault::Connect,
                    "connection vanished before use".to_owned(),
                ))
            }
        };
        let outcome = wire::write_request_traced(stream, &self.addr, req, span_id)
            .and_then(|()| wire::read_response_traced(stream, &self.addr));
        match outcome {
            // A typed server-side error is a *successful* exchange —
            // keep the connection.
            Ok((ShardResponse::Err(e), _)) => Err(e),
            Ok((resp, node)) => Ok((resp, node)),
            Err(e) => {
                // The stream may hold a half-written request or a
                // half-read reply; drop it so the next call redials
                // instead of desynchronising. The failed request is not
                // replayed (it may not be idempotent).
                *guard = None;
                Err(e)
            }
        }
    }

    fn bad_reply(&self, got: &ShardResponse) -> MmdbError {
        transport(
            &self.addr,
            TransportFault::Protocol,
            format!("unexpected reply variant `{}`", variant_name(got)),
        )
    }

    /// Compile and execute a query description on the server, returning
    /// its result rows. Used by the serving layer to front a whole
    /// remote engine.
    pub fn run_spec(&self, spec: &Spec) -> Result<ResultRows> {
        match self.call(&ShardRequest::RunSpec { spec: spec.clone() })? {
            ShardResponse::Rows(rows) => Ok(rows),
            other => Err(self.bad_reply(&other)),
        }
    }

    /// [`RemoteShard::run_spec`] under a trace: the request carries
    /// `span`'s id, and the server's timing breakdown comes back in the
    /// response frame and is grafted under `span` — one cross-process
    /// latency tree, no clock synchronisation needed.
    pub fn run_spec_traced(&self, spec: &Spec, span: &mut obs::Span) -> Result<ResultRows> {
        let req = ShardRequest::RunSpec { spec: spec.clone() };
        let mut rpc = span.child(format!("rpc:{}", self.addr));
        let (resp, node) = self.call_traced(&req, span.id())?;
        if let Some(node) = node {
            rpc.adopt(node);
        }
        span.adopt(rpc.finish());
        match resp {
            ShardResponse::Rows(rows) => Ok(rows),
            other => Err(self.bad_reply(&other)),
        }
    }

    /// Scrape the server's metric registry: the JSON dump
    /// `Registry::to_json` produces on the server side.
    pub fn stats(&self) -> Result<String> {
        match self.call(&ShardRequest::Stats)? {
            ShardResponse::Stats { json } => Ok(json),
            other => Err(self.bad_reply(&other)),
        }
    }

    /// Run a whole window of serving requests through the server's
    /// `BatchServer`, one result per request in submission order.
    pub fn execute_batch(
        &self,
        requests: Vec<OneRequest>,
    ) -> Result<Vec<std::result::Result<ResultRows, MmdbError>>> {
        match self.call(&ShardRequest::ExecuteBatch { requests })? {
            ShardResponse::Batch(results) => Ok(results),
            other => Err(self.bad_reply(&other)),
        }
    }

    /// Ask the server to finish in-flight connections and exit its
    /// accept loop.
    pub fn shutdown(&self) -> Result<()> {
        match self.call(&ShardRequest::Shutdown)? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }
}

fn variant_name(resp: &ShardResponse) -> &'static str {
    match resp {
        ShardResponse::RidSets(_) => "RidSets",
        ShardResponse::Rids(_) => "Rids",
        ShardResponse::Values(_) => "Values",
        ShardResponse::Groups(_) => "Groups",
        ShardResponse::Rows(_) => "Rows",
        ShardResponse::Batch(_) => "Batch",
        ShardResponse::Plan(_) => "Plan",
        ShardResponse::Names(_) => "Names",
        ShardResponse::Count(_) => "Count",
        ShardResponse::Rebuilt { .. } => "Rebuilt",
        ShardResponse::Info { .. } => "Info",
        ShardResponse::Unit => "Unit",
        ShardResponse::Stats { .. } => "Stats",
        ShardResponse::SnapshotChunk { .. } => "SnapshotChunk",
        ShardResponse::Err(_) => "Err",
    }
}

impl ShardBackend for RemoteShard {
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        match self.call(&ShardRequest::PointProbeBatch {
            table: table.to_owned(),
            column: column.to_owned(),
            values: values.to_vec(),
        })? {
            ShardResponse::RidSets(sets) => Ok(sets),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        match self.call(&ShardRequest::RangeProbeBatch {
            table: table.to_owned(),
            column: column.to_owned(),
            ranges: ranges.to_vec(),
        })? {
            ShardResponse::RidSets(sets) => Ok(sets),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn select(&self, plan: &Plan) -> Result<Vec<u32>> {
        let probes = plan
            .probes
            .iter()
            .map(|step| (step.column.clone(), step.kind, step.probe.clone()))
            .collect();
        match self.call(&ShardRequest::Select {
            table: plan.table.clone(),
            probes,
            exec: plan.exec,
        })? {
            ShardResponse::Rids(rids) => Ok(rids),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn join_probe_batch(
        &self,
        table: &str,
        column: &str,
        kind: IndexKind,
        values: &[Value],
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<Vec<u32>>> {
        match self.call(&ShardRequest::JoinProbeBatch {
            table: table.to_owned(),
            column: column.to_owned(),
            kind,
            values: values.to_vec(),
            lanes,
            threads,
        })? {
            ShardResponse::RidSets(sets) => Ok(sets),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn group_partial(
        &self,
        table: &str,
        group_column: &str,
        measure: Option<&str>,
        agg: AggFn,
        rids: Option<&[u32]>,
    ) -> Result<Vec<GroupRow>> {
        match self.call(&ShardRequest::GroupPartial {
            table: table.to_owned(),
            group_column: group_column.to_owned(),
            measure: measure.map(str::to_owned),
            agg,
            rids: rids.map(<[u32]>::to_vec),
        })? {
            ShardResponse::Groups(groups) => Ok(groups),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn column_values(&self, table: &str, column: &str, rids: Option<&[u32]>) -> Result<Vec<Value>> {
        match self.call(&ShardRequest::ColumnValues {
            table: table.to_owned(),
            column: column.to_owned(),
            rids: rids.map(<[u32]>::to_vec),
        })? {
            ShardResponse::Values(values) => Ok(values),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn compile(&self, spec: &Spec) -> Result<Plan> {
        match self.call(&ShardRequest::Compile { spec: spec.clone() })? {
            ShardResponse::Plan(plan) => Ok(plan),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn columns(&self, table: &str) -> Result<Vec<String>> {
        match self.call(&ShardRequest::Columns {
            table: table.to_owned(),
        })? {
            ShardResponse::Names(names) => Ok(names),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn rows(&self, table: &str) -> Result<usize> {
        match self.call(&ShardRequest::Rows {
            table: table.to_owned(),
        })? {
            ShardResponse::Count(n) => Ok(n as usize),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn register(&mut self, table: Table) -> Result<()> {
        let columns = table
            .columns()
            .map(|(name, col)| {
                let values = (0..col.len() as u32)
                    .map(|r| col.value(r).clone())
                    .collect();
                (name.to_owned(), values)
            })
            .collect();
        match self.call(&ShardRequest::Register {
            table: table.name().to_owned(),
            columns,
        })? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn drop_table(&mut self, table: &str) -> Result<()> {
        match self.call(&ShardRequest::DropTable {
            table: table.to_owned(),
        })? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        match self.call(&ShardRequest::CreateIndex {
            table: table.to_owned(),
            column: column.to_owned(),
            kind,
        })? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        match self.call(&ShardRequest::DropIndex {
            table: table.to_owned(),
            column: column.to_owned(),
            kind,
        })? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<RebuildReport> {
        match self.call(&ShardRequest::ReplaceColumn {
            table: table.to_owned(),
            column: column.to_owned(),
            values,
        })? {
            ShardResponse::Rebuilt { sort_ns, rebuilds } => Ok(rebuild_report(sort_ns, rebuilds)),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn rebuild_column(&mut self, table: &str, column: &str) -> Result<RebuildReport> {
        match self.call(&ShardRequest::RebuildColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })? {
            ShardResponse::Rebuilt { sort_ns, rebuilds } => Ok(rebuild_report(sort_ns, rebuilds)),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn set_exec_options(&mut self, exec: ExecOptions) -> Result<()> {
        match self.call(&ShardRequest::SetExecOptions { exec })? {
            ShardResponse::Unit => Ok(()),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn fetch_snapshot(&self) -> Result<Vec<u8>> {
        let mut bytes: Vec<u8> = Vec::new();
        let mut next = 0u32;
        loop {
            match self.call(&ShardRequest::FetchSnapshot { chunk: next })? {
                ShardResponse::SnapshotChunk {
                    chunk,
                    total_chunks,
                    total_len,
                    crc,
                    bytes: part,
                } => {
                    if chunk != next || total_chunks == 0 || chunk >= total_chunks {
                        return Err(transport(
                            &self.addr,
                            TransportFault::Protocol,
                            format!(
                                "snapshot chunk {chunk}/{total_chunks} arrived while \
                                 expecting chunk {next}"
                            ),
                        ));
                    }
                    if wire::crc32(&part) != crc {
                        return Err(transport(
                            &self.addr,
                            TransportFault::Checksum,
                            format!("snapshot chunk {chunk} failed its payload checksum"),
                        ));
                    }
                    bytes.extend_from_slice(&part);
                    next += 1;
                    if next == total_chunks {
                        if bytes.len() as u64 != total_len {
                            return Err(transport(
                                &self.addr,
                                TransportFault::Protocol,
                                format!(
                                    "snapshot reassembled to {} bytes, server declared {total_len}",
                                    bytes.len()
                                ),
                            ));
                        }
                        return Ok(bytes);
                    }
                }
                other => return Err(self.bad_reply(&other)),
            }
        }
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<()> {
        // At least one chunk, even for an empty catalog, so the server
        // always sees a final chunk and installs.
        let total_chunks =
            u32::try_from(bytes.len().div_ceil(SNAPSHOT_CHUNK).max(1)).map_err(|_| {
                transport(
                    &self.addr,
                    TransportFault::Protocol,
                    format!(
                        "snapshot of {} bytes exceeds the chunk count limit",
                        bytes.len()
                    ),
                )
            })?;
        let parts: Vec<&[u8]> = if bytes.is_empty() {
            vec![bytes]
        } else {
            bytes.chunks(SNAPSHOT_CHUNK).collect()
        };
        for (chunk, part) in parts.into_iter().enumerate() {
            let req = ShardRequest::InstallSnapshotChunk {
                chunk: chunk as u32,
                total_chunks,
                crc: wire::crc32(part),
                bytes: part.to_vec(),
            };
            match self.call(&req)? {
                ShardResponse::Unit => {}
                other => return Err(self.bad_reply(&other)),
            }
        }
        Ok(())
    }

    fn pin(&self) -> ShardPin {
        ShardPin::Remote(self.clone())
    }

    fn observe(&self) -> Result<ShardInfo> {
        match self.call(&ShardRequest::Hello)? {
            ShardResponse::Info {
                generation,
                swaps,
                pinned,
                exec,
            } => Ok(ShardInfo {
                generation,
                swaps,
                pinned,
                exec,
            }),
            other => Err(self.bad_reply(&other)),
        }
    }

    fn describe(&self) -> String {
        format!("remote {}", self.addr)
    }

    fn install_metrics(&mut self, registry: &obs::Registry) {
        self.retries = Some(registry.counter("transport.retries"));
    }
}

fn elapsed_ms(started: &std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn rebuild_report(sort_ns: u64, rebuilds: Vec<(IndexKind, u64)>) -> RebuildReport {
    RebuildReport {
        sort_time: Duration::from_nanos(sort_ns),
        rebuilds: rebuilds
            .into_iter()
            .map(|(kind, ns)| (kind, Duration::from_nanos(ns)))
            .collect(),
    }
}
