//! The sharded catalog: N per-shard [`Database`] engines behind one
//! `Database`-shaped surface, with scatter-gather query execution.
//!
//! [`ShardedDatabase::register`] splits every table's rows across shards
//! by a declared **shard key** column (placement decided by the
//! [`Partitioner`]); each shard is a complete [`Database`] catalog over
//! its row subset, so every existing operator — batched probes,
//! partitioned joins, grouped aggregation — runs unchanged *inside* a
//! shard. The new work is all routing and merging:
//!
//! * **selections** scatter a probes-only plan to the shards the
//!   partitioner says can match (equality on the shard key prunes to one
//!   shard, ranges prune to the overlapping shards of a range
//!   partitioner) and gather local RID sets back into global row order;
//! * **joins** stream the per-shard outer RID chunks through the inner
//!   table's per-shard indexes over the shared
//!   [`ccindex_parallel::WorkerPool`] — bucketed by owning inner shard
//!   when the join column *is* the inner table's shard key (each probe
//!   batch routed, original probe order restored on merge), fanned to
//!   every inner shard otherwise — and merge the partial outputs back
//!   into the sequential join's `(outer, inner)` order;
//! * **group-bys** aggregate *inside* each scatter job and merge the
//!   per-shard partial aggregates by group value at the gather barrier,
//!   the same commutative merge the partitioned
//!   `group_aggregate_pairs_par` operator uses across workers.
//!
//! Results are **byte-identical** to the same queries on an unsharded
//! [`Database`] for every shard count and both partitioners — the
//! property `tests/sharded_equivalence.rs` and `figures sharded` assert.

use crate::backend::{LocalShard, ShardBackend, ShardPin};
use crate::partition::Partitioner;
use crate::remote::RemoteShard;
use ccindex_obs as obs;
use ccindex_parallel::sync::Arc as MetricArc;
use ccindex_parallel::WorkerPool;
use ccindex_wire::Spec;
use mmdb::domain::Value;
use mmdb::plan::{Plan, Probe, Side};
use mmdb::{
    Agg, AggFn, Column, Database, ExecOptions, GroupRow, IndexKind, JoinOn, JoinRow, MmdbError,
    Pinned, Predicate, RebuildReport, Result, ResultRows, SwapSlot, Table,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

// ---------------------------------------------------------------------
// The sharded catalog
// ---------------------------------------------------------------------

/// N per-shard [`Database`] catalogs behind one engine surface.
///
/// Follows the same epoch/snapshot discipline as [`Database`]: every
/// successful mutation commits a composed [`ShardedState`] — built from
/// per-shard catalog generations updated under the *same* mutation — to
/// a shared [`SwapSlot`], so a pinned [`ShardedSnapshot`] always sees
/// every shard at one consistent commit (never a half-re-partitioned
/// table or a column/index mix across shards).
#[derive(Debug)]
pub struct ShardedDatabase {
    partitioner: Arc<dyn Partitioner>,
    shards: Vec<Box<dyn ShardBackend>>,
    tables: BTreeMap<String, Arc<ShardedTable>>,
    exec: ExecOptions,
    /// Monotonic commit counter for the *composed* catalog.
    generation: u64,
    /// The commit point shared with every reader handle and snapshot.
    slot: Arc<SwapSlot<ShardedState>>,
    /// Scatter-gather observability handles (shared with every
    /// committed [`ShardedState`], so pinned snapshots record too).
    metrics: ShardMetrics,
}

/// Per-table placement metadata: where every global row lives.
#[derive(Debug, Clone)]
struct ShardedTable {
    shard_key: String,
    rows: usize,
    /// Global RID -> (owning shard, local RID there).
    placement: Vec<(u32, u32)>,
    /// Shard -> local RID -> global RID (ascending: rows are split in
    /// global row order, so local order preserves global order).
    locals: Vec<Vec<u32>>,
    /// Indexes created through this catalog, so a re-partition can
    /// rebuild them: column -> kinds.
    indexes: BTreeMap<String, BTreeSet<IndexKind>>,
}

/// Pre-registered scatter-gather metric handles, resolved once at
/// catalog construction so the probe hot path records through plain
/// atomics instead of taking the registry lock per batch.
#[derive(Debug, Clone)]
struct ShardMetrics {
    registry: MetricArc<obs::Registry>,
    /// `shard.route.pruned`: probe batches whose column was the shard
    /// key, so routing pruned each probe to its owning shard(s).
    route_pruned: MetricArc<obs::Counter>,
    /// `shard.route.fanned`: probe batches on a non-key column, fanned
    /// to every shard.
    route_fanned: MetricArc<obs::Counter>,
    /// `shard.scatter.ns`: per-batch time answering the routed probe
    /// subsets across the shards (the worker-pool scatter).
    scatter_ns: MetricArc<obs::Histogram>,
    /// `shard.gather.ns`: per-batch time translating local RIDs to
    /// global and merging answers back into submission order.
    gather_ns: MetricArc<obs::Histogram>,
}

impl ShardMetrics {
    fn install(registry: MetricArc<obs::Registry>) -> Self {
        Self {
            route_pruned: registry.counter("shard.route.pruned"),
            route_fanned: registry.counter("shard.route.fanned"),
            scatter_ns: registry.histogram("shard.scatter.ns"),
            gather_ns: registry.histogram("shard.gather.ns"),
            registry,
        }
    }
}

/// Nanoseconds since `since`, saturating at `u64::MAX`.
fn elapsed_ns(since: &std::time::Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One immutable generation of the *composed* sharded catalog: a
/// [`ShardPin`] per shard (all captured under the same commit — a local
/// shard pins its [`mmdb::CatalogState`], a remote shard pins a client
/// onto its server's committed tip), the placement metadata that routes
/// global rows to shards, and the partitioner — everything
/// scatter-gather execution needs, nothing a writer can touch. The
/// sharded twin of [`mmdb::CatalogState`].
///
/// Cloning is cheap: per-shard states are `BTreeMap`s of `Arc`ed table
/// entries and the placement tables sit behind `Arc` too, so a
/// generation clone is pointer bumps all the way down.
#[derive(Debug, Clone)]
pub struct ShardedState {
    partitioner: Arc<dyn Partitioner>,
    shards: Vec<ShardPin>,
    tables: BTreeMap<String, Arc<ShardedTable>>,
    exec: ExecOptions,
    generation: u64,
    metrics: ShardMetrics,
}

/// The sharded catalog's pinned-generation guard:
/// [`ShardedDatabase::snapshot`] hands these out, and every read API of
/// [`ShardedState`] is available through `Deref`. Holds no lock — the
/// guard is an `Arc` plus a pin counter, exactly like [`mmdb::Snapshot`].
pub type ShardedSnapshot = Pinned<ShardedState>;

/// A cloneable, `Send + Sync` reader handle onto a live
/// [`ShardedDatabase`]: readers on other threads call
/// [`snapshot`](ShardedHandle::snapshot) to pin the current composed
/// generation while the owning thread keeps `&mut` access for commits.
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    slot: Arc<SwapSlot<ShardedState>>,
}

impl ShardedHandle {
    /// Pin the current composed generation (identical to
    /// [`ShardedDatabase::snapshot`]).
    pub fn snapshot(&self) -> ShardedSnapshot {
        self.slot.pin()
    }

    /// The generation number of the current committed state.
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// How many composed generations have been committed so far.
    pub fn swaps(&self) -> u64 {
        self.slot.swaps()
    }

    /// Live pinned snapshots, across all generations.
    pub fn pinned(&self) -> usize {
        self.slot.pinned()
    }
}

/// The borrowed read surface the scatter-gather executor runs against —
/// a [`ShardBackend`] reference per shard, buildable from both a live
/// [`ShardedDatabase`] and an immutable [`ShardedState`], so the same
/// routing/merging code serves mutable callers, pinned snapshots, and
/// any local/remote shard mix.
#[derive(Debug, Clone)]
struct ShardView<'a> {
    partitioner: &'a dyn Partitioner,
    shards: Vec<&'a dyn ShardBackend>,
    tables: &'a BTreeMap<String, Arc<ShardedTable>>,
    exec: ExecOptions,
    metrics: &'a ShardMetrics,
}

/// What one sharded [`ShardedDatabase::replace_column`] cycle did.
#[derive(Debug)]
pub struct ShardedRebuildReport {
    /// True when the replaced column was the table's shard key: rows
    /// were re-placed and every shard's tables and indexes were rebuilt
    /// from scratch (`per_shard` is empty in that case — there is no
    /// per-shard delta to report).
    pub repartitioned: bool,
    /// One rebuild report per shard, in shard order (non-key columns).
    pub per_shard: Vec<RebuildReport>,
}

impl ShardedDatabase {
    /// A sharded catalog partitioned by `partitioner` (one shard per
    /// `partitioner.shards()`, each starting as an empty [`Database`]).
    /// Execution options start from [`ExecOptions::from_env`], exactly
    /// like [`Database::new`].
    pub fn new<P: Partitioner + 'static>(partitioner: P) -> Result<Self> {
        let shards = (0..partitioner.shards())
            .map(|_| Box::new(LocalShard::new(Database::new())) as Box<dyn ShardBackend>)
            .collect();
        Self::with_backends(partitioner, shards)
    }

    /// A sharded catalog over caller-supplied [`ShardBackend`]s — the
    /// transport-generic constructor behind [`ShardedDatabase::new`]
    /// (all in-process) and [`ShardedDatabase::connect`] (all remote);
    /// mixes are equally valid. One backend per partitioner shard, in
    /// shard order. The catalog's [`ExecOptions`] (from the
    /// environment) are installed on every backend up front, so a shard
    /// that is already unreachable fails construction with a typed
    /// error instead of failing the first query.
    pub fn with_backends<P: Partitioner + 'static>(
        partitioner: P,
        backends: Vec<Box<dyn ShardBackend>>,
    ) -> Result<Self> {
        if partitioner.shards() == 0 {
            return Err(MmdbError::InvalidPartitioner {
                reason: "partitioner declares zero shards".into(),
            });
        }
        if backends.len() != partitioner.shards() {
            return Err(MmdbError::InvalidPartitioner {
                reason: format!(
                    "partitioner declares {} shard(s) but {} backend(s) were supplied",
                    partitioner.shards(),
                    backends.len()
                ),
            });
        }
        let exec = ExecOptions::from_env();
        let metrics = ShardMetrics::install(MetricArc::new(obs::Registry::new()));
        let mut shards = backends;
        for shard in &mut shards {
            shard.set_exec_options(exec)?;
            shard.install_metrics(&metrics.registry);
        }
        let partitioner: Arc<dyn Partitioner> = Arc::new(partitioner);
        let initial = ShardedState {
            partitioner: Arc::clone(&partitioner),
            shards: shards.iter().map(|b| b.pin()).collect(),
            tables: BTreeMap::new(),
            exec,
            generation: 0,
            metrics: metrics.clone(),
        };
        Ok(Self {
            partitioner,
            shards,
            tables: BTreeMap::new(),
            exec,
            generation: 0,
            slot: SwapSlot::new(initial, 0),
            metrics,
        })
    }

    /// A sharded catalog whose shards are **remote** `ShardServer`s:
    /// one address per partitioner shard, dialed with bounded retry and
    /// a protocol handshake (see [`RemoteShard::connect`]). Every
    /// scatter-gather operation then runs over the wire, byte-identical
    /// to the same catalog in-process — same executor, different
    /// transport.
    pub fn connect<P: Partitioner + 'static>(partitioner: P, addrs: &[String]) -> Result<Self> {
        let backends = addrs
            .iter()
            .map(|addr| {
                RemoteShard::connect(addr.as_str()).map(|r| Box::new(r) as Box<dyn ShardBackend>)
            })
            .collect::<Result<Vec<_>>>()?;
        Self::with_backends(partitioner, backends)
    }

    /// Hash-partitioned catalog over `shards` shards.
    pub fn hash(shards: usize) -> Result<Self> {
        Self::new(crate::partition::HashPartitioner::new(shards)?)
    }

    /// The catalog's metric registry: `shard.route.pruned` /
    /// `shard.route.fanned` batch routing counts, `shard.scatter.ns` /
    /// `shard.gather.ns` per-batch timing histograms, plus
    /// `transport.retries` when any shard is remote. Shared with every
    /// committed generation, so probes through pinned snapshots and
    /// reader handles record into the same series.
    pub fn registry(&self) -> &MetricArc<obs::Registry> {
        &self.metrics.registry
    }

    /// Hash-partitioned catalog sized by the environment:
    /// `CCINDEX_SHARDS` (via [`ExecOptions::from_env`]), defaulting to a
    /// single shard — so a whole test suite or service can be switched
    /// to sharded execution without a code change.
    pub fn from_env() -> Result<Self> {
        Self::hash(ExecOptions::from_env().shards.max(1))
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The partitioner's one-line description (`hash x4`, `range x2: …`).
    pub fn partitioner(&self) -> String {
        self.partitioner.describe()
    }

    /// One shard's in-process engine, for inspection.
    ///
    /// # Panics
    ///
    /// Panics when shard `shard` is remote — its engine lives across
    /// the wire. Use [`ShardedDatabase::backend`] for transport-generic
    /// access.
    pub fn shard(&self, shard: usize) -> &Database {
        self.shards[shard]
            .as_database()
            .expect("shard() inspects in-process shards; use backend() for remote shards")
    }

    /// One shard's transport-generic backend, for inspection.
    pub fn backend(&self, shard: usize) -> &dyn ShardBackend {
        &*self.shards[shard]
    }

    /// Set the catalog-wide [`ExecOptions`]; propagated to every shard
    /// so per-shard plans inherit the same knobs. Commits a generation:
    /// snapshots pinned afterwards plan with the new options. Fails
    /// typed — without committing — when a remote shard cannot be
    /// reached (local shards are infallible here).
    pub fn set_exec_options(&mut self, options: ExecOptions) -> Result<()> {
        for shard in &mut self.shards {
            shard.set_exec_options(options)?;
        }
        self.exec = options;
        self.publish();
        Ok(())
    }

    /// Replace shard `shard`'s backend with `backend`, bootstrapping the
    /// newcomer from the outgoing backend's serialized snapshot: fetch
    /// the paged `ccindex-store` bytes off the old backend's committed
    /// tip ([`ShardBackend::fetch_snapshot`]), install them on the
    /// newcomer through its ordinary commit cycle
    /// ([`ShardBackend::install_snapshot`]), then swap it in and commit
    /// a composed generation. The newcomer inherits the catalog-wide
    /// [`ExecOptions`] and metric registry, exactly as
    /// [`ShardedDatabase::with_backends`] installs them. Queries against
    /// snapshots pinned before the swap keep answering from the old
    /// backend's pinned state; the catalog itself is untouched when any
    /// step fails (the typed error surfaces and the old backend stays).
    pub fn replace_shard_backend(
        &mut self,
        shard: usize,
        mut backend: Box<dyn ShardBackend>,
    ) -> Result<()> {
        let outgoing = self
            .shards
            .get(shard)
            .ok_or_else(|| MmdbError::Unsupported {
                what: format!(
                    "replace_shard_backend on shard {shard}; catalog has {} shard(s)",
                    self.shards.len()
                ),
            })?;
        let snapshot = outgoing.fetch_snapshot()?;
        backend.install_snapshot(&snapshot)?;
        backend.set_exec_options(self.exec)?;
        backend.install_metrics(&self.metrics.registry);
        self.shards[shard] = backend;
        self.publish();
        Ok(())
    }

    /// Pin the current composed generation: the returned snapshot serves
    /// the full read surface ([`ShardedState::query`], the probe
    /// batches) lock-free, and concurrent commits never move data out
    /// from under it.
    pub fn snapshot(&self) -> ShardedSnapshot {
        self.slot.pin()
    }

    /// A cloneable reader handle sharing this catalog's commit slot, for
    /// pinning snapshots from other threads.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            slot: Arc::clone(&self.slot),
        }
    }

    /// The commit counter of the composed catalog (0 = empty).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many composed generations have been committed.
    pub fn swap_count(&self) -> u64 {
        self.slot.swaps()
    }

    /// Live pinned snapshots, across all generations.
    pub fn pinned_snapshots(&self) -> usize {
        self.slot.pinned()
    }

    /// The catalog-wide [`ExecOptions`] new plans inherit.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Register a table, splitting its rows across shards by the values
    /// of `shard_key`. Fails — leaving the catalog untouched — with a
    /// typed error when the name is taken, the key column is missing, or
    /// a key falls outside the partitioner's declared ranges
    /// ([`MmdbError::ShardKeyOutOfRange`]).
    pub fn register(&mut self, table: Table, shard_key: &str) -> Result<()> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(MmdbError::DuplicateTable { table: name });
        }
        let key_col = table
            .column(shard_key)
            .ok_or_else(|| MmdbError::UnknownColumn {
                table: name.clone(),
                column: shard_key.to_owned(),
            })?;
        let (placement, locals) = self.place_rows(key_col)?;
        let split = split_table(&table, &locals);
        for (shard, t) in split.into_iter().enumerate() {
            self.shards[shard].register(t)?;
        }
        self.tables.insert(
            name,
            Arc::new(ShardedTable {
                shard_key: shard_key.to_owned(),
                rows: table.rows(),
                placement,
                locals,
                indexes: BTreeMap::new(),
            }),
        );
        self.publish();
        Ok(())
    }

    /// Registered table names, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total (global) row count of `table`.
    pub fn rows(&self, table: &str) -> Result<usize> {
        Ok(self.meta(table)?.rows)
    }

    /// The declared shard-key column of `table`.
    pub fn shard_key(&self, table: &str) -> Result<&str> {
        Ok(self.meta(table)?.shard_key.as_str())
    }

    /// Where a global row lives: `(shard, local RID)`.
    pub fn placement_of(&self, table: &str, global_rid: u32) -> Result<(usize, u32)> {
        let meta = self.meta(table)?;
        let (s, l) = meta.placement[global_rid as usize];
        Ok((s as usize, l))
    }

    /// Build (or rebuild) a `kind` index on `table.column` — on every
    /// shard, so scattered probes always find their access path.
    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        self.meta(table)?;
        for shard in &mut self.shards {
            shard.create_index(table, column, kind)?;
        }
        Arc::make_mut(self.tables.get_mut(table).expect("checked above"))
            .indexes
            .entry(column.to_owned())
            .or_default()
            .insert(kind);
        self.publish();
        Ok(())
    }

    /// Drop the `kind` index on `table.column` from every shard.
    pub fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        self.meta(table)?;
        for shard in &mut self.shards {
            shard.drop_index(table, column, kind)?;
        }
        let meta = Arc::make_mut(self.tables.get_mut(table).expect("checked above"));
        if let Some(kinds) = meta.indexes.get_mut(column) {
            kinds.remove(&kind);
            if kinds.is_empty() {
                meta.indexes.remove(column);
            }
        }
        self.publish();
        Ok(())
    }

    /// Replace a column's values wholesale (the OLAP batch-update entry
    /// point), splitting the update by shard. Replacing an ordinary
    /// column routes each row's new value to the shard owning the row
    /// and runs the per-shard rebuild cycles in shard order. Replacing
    /// the **shard key** re-partitions: rows are re-placed under the new
    /// keys, every shard's table is rebuilt, and all registered indexes
    /// are re-created. Every error path (length mismatch, key outside
    /// the declared ranges) leaves the catalog untouched.
    pub fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<ShardedRebuildReport> {
        let meta = self.meta(table)?;
        if !self.shards[0].columns(table)?.iter().any(|c| c == column) {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        if values.len() != meta.rows {
            return Err(MmdbError::RaggedColumn {
                table: table.to_owned(),
                column: column.to_owned(),
                expected: meta.rows,
                got: values.len(),
            });
        }
        if column == meta.shard_key {
            return self.repartition(table, column, values);
        }
        // Route each row's new value to the shard that owns the row.
        let locals = &self.tables[table].locals;
        let per_shard: Vec<Vec<Value>> = locals
            .iter()
            .map(|l| l.iter().map(|&g| values[g as usize].clone()).collect())
            .collect();
        let mut reports = Vec::with_capacity(self.shards.len());
        for (shard, vals) in self.shards.iter_mut().zip(per_shard) {
            reports.push(shard.replace_column(table, column, vals)?);
        }
        // One composed commit after every shard finished its cycle:
        // snapshots see either no shard updated or all of them.
        self.publish();
        Ok(ShardedRebuildReport {
            repartitioned: false,
            per_shard: reports,
        })
    }

    /// Re-run the rebuild cycle for `table.column` on every shard (each
    /// shard's per-kind rebuilds ride its own worker pool).
    pub fn rebuild_column(&mut self, table: &str, column: &str) -> Result<Vec<RebuildReport>> {
        self.meta(table)?;
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            reports.push(shard.rebuild_column(table, column)?);
        }
        self.publish();
        Ok(reports)
    }

    /// Answer many equality probes on one `table.column` scatter-gather:
    /// each value routes through the partitioner when the column **is**
    /// the table's shard key (pruning to the owning shard, or to no
    /// shard for unowned keys) and fans to every shard otherwise; the
    /// routed shards each answer their value subset with one local
    /// [`Database::point_probe_batch`] (a single batched index descent)
    /// over the shared worker pool, and local RIDs gather back to global
    /// row order. One ascending global RID set per value, in submission
    /// order — byte-identical to
    /// `query(table).filter(eq(column, values[i])).run()?.rids()`.
    ///
    /// This is the scatter entry point the batch-forming serving
    /// front-end (`ccindex-serve`) drives for coalesced point requests.
    pub fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        self.view().point_probe_batch(table, column, values)
    }

    /// The range twin of [`ShardedDatabase::point_probe_batch`]: each
    /// inclusive `[lo, hi]` range prunes to the partitioner's
    /// [`Partitioner::range_shards`] when the column is the shard key
    /// (an inverted range routes nowhere), fans everywhere otherwise,
    /// and the routed shards answer with local
    /// [`Database::range_probe_batch`] calls. One ascending global RID
    /// set per range, in submission order.
    pub fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        self.view().range_probe_batch(table, column, ranges)
    }

    /// Start a composable query over `table` — the same builder surface
    /// as [`Database::query`], compiled into a [`ShardedPlan`] that
    /// records its shard routing.
    pub fn query(&self, table: impl Into<String>) -> ShardedQuery<'_> {
        self.view().query(table)
    }

    // ---- internals ----

    fn meta(&self, table: &str) -> Result<&ShardedTable> {
        self.tables
            .get(table)
            .map(|t| &**t)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }

    /// The borrowed executor view over the shards' *current* tips.
    fn view(&self) -> ShardView<'_> {
        ShardView {
            partitioner: &*self.partitioner,
            shards: self.shards.iter().map(|b| &**b).collect(),
            tables: &self.tables,
            exec: self.exec,
            metrics: &self.metrics,
        }
    }

    /// Commit the composed catalog: capture every shard's current tip
    /// plus the placement metadata as one immutable [`ShardedState`] and
    /// install it. Called exactly once at the end of every successful
    /// mutation, *after* all shards updated — a pinned snapshot never
    /// observes half a cross-shard mutation.
    fn publish(&mut self) {
        self.generation += 1;
        self.slot.install(
            ShardedState {
                partitioner: Arc::clone(&self.partitioner),
                shards: self.shards.iter().map(|b| b.pin()).collect(),
                tables: self.tables.clone(),
                exec: self.exec,
                generation: self.generation,
                metrics: self.metrics.clone(),
            },
            self.generation,
        );
    }

    /// Place one row per key value; fails before any state changes.
    #[allow(clippy::type_complexity)]
    fn place_rows(&self, key_col: &Column) -> Result<(Vec<(u32, u32)>, Vec<Vec<u32>>)> {
        let mut placement = Vec::with_capacity(key_col.len());
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for rid in 0..key_col.len() as u32 {
            let shard = self.partitioner.shard_of(key_col.value(rid))?;
            placement.push((shard as u32, locals[shard].len() as u32));
            locals[shard].push(rid);
        }
        Ok((placement, locals))
    }

    /// The shard-key path of [`ShardedDatabase::replace_column`]: rows
    /// move shards, so reassemble every column globally, re-place, and
    /// rebuild tables and indexes on every shard.
    fn repartition(
        &mut self,
        table: &str,
        key_column: &str,
        new_keys: Vec<Value>,
    ) -> Result<ShardedRebuildReport> {
        // Validate the new placement first — the catalog stays untouched
        // when a new key has no owning shard.
        let new_key_col = Column::from_values(&new_keys);
        let (placement, locals) = self.place_rows(&new_key_col)?;

        // Reassemble each column's global values from the current shards.
        let meta = &self.tables[table];
        let old_placement = meta.placement.clone();
        let columns: Vec<String> = self.shards[0].columns(table)?;
        let mut global = mmdb::TableBuilder::new(table);
        for name in &columns {
            let values: Vec<Value> = if name == key_column {
                new_keys.clone()
            } else {
                // One batched fetch per shard (a single round trip for
                // a remote shard) — the row loop below then runs on
                // plain slice accesses.
                let shard_vals: Vec<Vec<Value>> = self
                    .shards
                    .iter()
                    .map(|shard| shard.column_values(table, name, None))
                    .collect::<Result<_>>()?;
                old_placement
                    .iter()
                    .map(|&(s, l)| shard_vals[s as usize][l as usize].clone())
                    .collect()
            };
            global = global.column(name, values);
        }
        let global = global.build()?;

        // Swap in the re-split tables and re-create the indexes.
        let split = split_table(&global, &locals);
        for (shard, t) in split.into_iter().enumerate() {
            self.shards[shard].drop_table(table)?;
            self.shards[shard].register(t)?;
        }
        let index_spec: Vec<(String, IndexKind)> = meta
            .indexes
            .iter()
            .flat_map(|(c, ks)| ks.iter().map(move |&k| (c.clone(), k)))
            .collect();
        for (column, kind) in &index_spec {
            for shard in &mut self.shards {
                shard.create_index(table, column, *kind)?;
            }
        }
        let meta = Arc::make_mut(self.tables.get_mut(table).expect("present"));
        meta.placement = placement;
        meta.locals = locals;
        self.publish();
        Ok(ShardedRebuildReport {
            repartitioned: true,
            per_shard: Vec::new(),
        })
    }
}

impl ShardedState {
    /// The commit counter of this composed generation (0 = empty).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The [`ExecOptions`] in force when this generation committed.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The metric registry shared with the owning catalog — probes
    /// through a pinned snapshot record into the same `shard.*` series
    /// as probes through the live [`ShardedDatabase`].
    pub fn registry(&self) -> &MetricArc<obs::Registry> {
        &self.metrics.registry
    }

    /// One shard's pinned backend, for inspection: a frozen
    /// [`mmdb::CatalogState`] for local shards, a client onto the
    /// server's committed tip for remote ones.
    pub fn shard(&self, shard: usize) -> &ShardPin {
        &self.shards[shard]
    }

    /// The partitioner's one-line description.
    pub fn partitioner(&self) -> String {
        self.partitioner.describe()
    }

    /// Registered table names, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total (global) row count of `table` in this generation.
    pub fn rows(&self, table: &str) -> Result<usize> {
        Ok(self.view().meta(table)?.rows)
    }

    /// The declared shard-key column of `table`.
    pub fn shard_key(&self, table: &str) -> Result<&str> {
        Ok(self.view().meta(table)?.shard_key.as_str())
    }

    /// The batched point-probe surface of this generation — identical
    /// semantics to [`ShardedDatabase::point_probe_batch`], but against
    /// the pinned shards, so it runs lock-free under concurrent commits.
    pub fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        self.view().point_probe_batch(table, column, values)
    }

    /// The batched range-probe surface of this generation — identical
    /// semantics to [`ShardedDatabase::range_probe_batch`].
    pub fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        self.view().range_probe_batch(table, column, ranges)
    }

    /// Start a composable query over `table` against this generation —
    /// the same builder [`ShardedDatabase::query`] returns.
    pub fn query(&self, table: impl Into<String>) -> ShardedQuery<'_> {
        self.view().query(table)
    }

    fn view(&self) -> ShardView<'_> {
        ShardView {
            partitioner: &*self.partitioner,
            shards: self.shards.iter().map(|p| p as &dyn ShardBackend).collect(),
            tables: &self.tables,
            exec: self.exec,
            metrics: &self.metrics,
        }
    }
}

impl<'a> ShardView<'a> {
    fn meta(&self, table: &str) -> Result<&'a ShardedTable> {
        self.tables
            .get(table)
            .map(|t| &**t)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        let meta = self.meta(table)?;
        // Resolve the access path once against shard 0 (every shard has
        // the same schema and index kinds) so a missing table, column or
        // index fails typed even when routing prunes every probe away —
        // the per-request query path errors there, and batch answers
        // must match it byte for byte.
        self.shards[0].point_probe_batch(table, column, &[])?;
        if column == meta.shard_key {
            self.metrics.route_pruned.inc();
            let routed = scatter_pruned(self.shards.len(), values, |v| {
                self.partitioner.probe_shards(v)
            });
            self.gather_pruned(meta, values.len(), routed, |shard, vals| {
                shard.point_probe_batch(table, column, vals)
            })
        } else {
            self.metrics.route_fanned.inc();
            self.gather_fanned(meta, values.len(), |shard| {
                shard.point_probe_batch(table, column, values)
            })
        }
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        let meta = self.meta(table)?;
        // Same upfront resolution as the point path: an unordered-only
        // column must fail `NoOrderedIndex` even if every range routes
        // nowhere.
        self.shards[0].range_probe_batch(table, column, &[])?;
        if column == meta.shard_key {
            self.metrics.route_pruned.inc();
            let routed = scatter_pruned(self.shards.len(), ranges, |(lo, hi)| {
                self.partitioner.range_shards(lo, hi)
            });
            self.gather_pruned(meta, ranges.len(), routed, |shard, rs| {
                shard.range_probe_batch(table, column, rs)
            })
        } else {
            self.metrics.route_fanned.inc();
            self.gather_fanned(meta, ranges.len(), |shard| {
                shard.range_probe_batch(table, column, ranges)
            })
        }
    }

    /// Run the routed per-shard probe subsets over the worker pool (one
    /// fat job per shard with work), translate local RIDs to global
    /// through the placement map, and demultiplex each answer back to
    /// its probe's submission slot. `slots` is the original probe count:
    /// a probe that routed to no shard (an unowned key) still owns an
    /// output slot and answers with the empty set.
    fn gather_pruned<P: Sync>(
        &self,
        meta: &ShardedTable,
        slots: usize,
        routed: Vec<(Vec<P>, Vec<usize>)>,
        answer: impl Fn(&dyn ShardBackend, &[P]) -> Result<Vec<Vec<u32>>> + Sync,
    ) -> Result<Vec<Vec<u32>>> {
        let jobs: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !routed[s].0.is_empty())
            .collect();
        let scattering = std::time::Instant::now();
        let results = ccindex_parallel::WorkerPool::new(self.exec.threads).run(jobs.len(), |i| {
            answer(self.shards[jobs[i]], &routed[jobs[i]].0)
        });
        self.metrics.scatter_ns.record(elapsed_ns(&scattering));
        let gathering = std::time::Instant::now();
        let mut out: Vec<Vec<u32>> = (0..slots).map(|_| Vec::new()).collect();
        for (&s, per_probe) in jobs.iter().zip(results) {
            let locals = &meta.locals[s];
            for (&slot, local_rids) in routed[s].1.iter().zip(per_probe?) {
                out[slot].extend(local_rids.iter().map(|&l| locals[l as usize]));
            }
        }
        for rids in &mut out {
            rids.sort_unstable();
        }
        self.metrics.gather_ns.record(elapsed_ns(&gathering));
        Ok(out)
    }

    /// The fanned gather: every shard answers the *same* full probe
    /// batch (no per-shard subsets, so nothing is cloned), and shard
    /// `s`'s answer for probe `i` merges straight into output slot `i`.
    fn gather_fanned(
        &self,
        meta: &ShardedTable,
        slots: usize,
        answer: impl Fn(&dyn ShardBackend) -> Result<Vec<Vec<u32>>> + Sync,
    ) -> Result<Vec<Vec<u32>>> {
        let scattering = std::time::Instant::now();
        let results = ccindex_parallel::WorkerPool::new(self.exec.threads)
            .run(self.shards.len(), |s| answer(self.shards[s]));
        self.metrics.scatter_ns.record(elapsed_ns(&scattering));
        let gathering = std::time::Instant::now();
        let mut out: Vec<Vec<u32>> = (0..slots).map(|_| Vec::new()).collect();
        for (s, per_probe) in results.into_iter().enumerate() {
            let locals = &meta.locals[s];
            for (slot, local_rids) in per_probe?.into_iter().enumerate() {
                out[slot].extend(local_rids.into_iter().map(|l| locals[l as usize]));
            }
        }
        for rids in &mut out {
            rids.sort_unstable();
        }
        self.metrics.gather_ns.record(elapsed_ns(&gathering));
        Ok(out)
    }

    fn query(self, table: impl Into<String>) -> ShardedQuery<'a> {
        ShardedQuery {
            view: self,
            table: table.into(),
            filters: Vec::new(),
            join: None,
            group: None,
            forced_kind: None,
            exec: None,
        }
    }
}

/// Route each probe of a shard-key batch to its pruned target shards:
/// per shard, the probe subset it must answer plus each probe's original
/// submission slot (a probe routing to no shard appears in no subset).
fn scatter_pruned<P: Clone>(
    shards: usize,
    probes: &[P],
    route: impl Fn(&P) -> Vec<usize>,
) -> Vec<(Vec<P>, Vec<usize>)> {
    let mut routed: Vec<(Vec<P>, Vec<usize>)> = (0..shards).map(|_| Default::default()).collect();
    for (slot, probe) in probes.iter().enumerate() {
        for target in route(probe) {
            routed[target].0.push(probe.clone());
            routed[target].1.push(slot);
        }
    }
    routed
}

/// Split `table` into one per-shard table following `locals` (shard ->
/// global RIDs, in local order). Empty shards get an empty table of the
/// same schema.
fn split_table(table: &Table, locals: &[Vec<u32>]) -> Vec<Table> {
    locals
        .iter()
        .map(|rows| {
            let mut b = mmdb::TableBuilder::new(table.name());
            for (name, col) in table.columns() {
                let values: Vec<Value> = rows.iter().map(|&g| col.value(g).clone()).collect();
                b = b.column(name, values);
            }
            b.build().expect("equal-length splits by construction")
        })
        .collect()
}

// ---------------------------------------------------------------------
// The sharded query builder
// ---------------------------------------------------------------------

/// A composable query over a [`ShardedDatabase`] or a pinned
/// [`ShardedSnapshot`] — the same surface as [`mmdb::Query`]
/// (`filter`/`join`/`group_by`/`using`/`exec`), compiled by
/// [`ShardedQuery::plan`] into a [`ShardedPlan`] whose routing is
/// inspectable and whose executor scatter-gathers across the shards.
#[derive(Debug, Clone)]
pub struct ShardedQuery<'db> {
    view: ShardView<'db>,
    table: String,
    filters: Vec<Predicate>,
    join: Option<(String, JoinOn)>,
    group: Option<(String, Agg)>,
    forced_kind: Option<IndexKind>,
    exec: Option<ExecOptions>,
}

impl<'db> ShardedQuery<'db> {
    /// Add a conjunct; multiple filters AND together. Conjuncts on the
    /// shard-key column additionally prune the scatter set.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filters.push(predicate);
        self
    }

    /// Indexed nested-loop join against `inner_table` (which must also
    /// be registered in this sharded catalog).
    pub fn join(mut self, inner_table: &str, condition: JoinOn) -> Self {
        self.join = Some((inner_table.to_owned(), condition));
        self
    }

    /// Group the result by `column` and aggregate each group; per-shard
    /// partials merge at the gather barrier.
    pub fn group_by(mut self, column: &str, agg: Agg) -> Self {
        self.group = Some((column.to_owned(), agg));
        self
    }

    /// Force every probe through one [`IndexKind`] (must be built via
    /// [`ShardedDatabase::create_index`], i.e. on every shard).
    pub fn using(mut self, kind: IndexKind) -> Self {
        self.forced_kind = Some(kind);
        self
    }

    /// Override the catalog's [`ExecOptions`] for this query alone.
    pub fn exec(mut self, options: ExecOptions) -> Self {
        self.exec = Some(options);
        self
    }

    /// Compile: resolve names and access paths against shard 0 (every
    /// shard has the same schema and indexes), then compute the shard
    /// routing from the partitioner.
    pub fn plan(&self) -> Result<ShardedPlan> {
        let view = &self.view;
        let meta = view.meta(&self.table)?;
        // The per-shard template: one compile is enough because every
        // shard holds the same tables, columns and index kinds. Shard 0
        // compiles it — through its local planner or across the wire —
        // so local and remote catalogs produce the same template.
        let spec = Spec {
            table: self.table.clone(),
            filters: self.filters.clone(),
            join: self.join.clone(),
            group: self.group.clone(),
            forced_kind: self.forced_kind,
            exec: self.exec,
        };
        let template = view.shards[0].compile(&spec)?;

        // Routing: each shard-key conjunct prunes; everything else fans.
        let nshards = view.shards.len();
        let mut probe_targets = Vec::with_capacity(template.probes.len());
        let mut selected: BTreeSet<usize> = (0..nshards).collect();
        for step in &template.probes {
            let target = if step.column == meta.shard_key {
                let routed = match &step.probe {
                    Probe::Point(v) => view.partitioner.probe_shards(v),
                    Probe::Range(lo, hi) => view.partitioner.range_shards(lo, hi),
                };
                if routed.len() == nshards {
                    ShardTargets::All
                } else {
                    ShardTargets::Pruned(routed)
                }
            } else {
                ShardTargets::All
            };
            if let ShardTargets::Pruned(routed) = &target {
                let routed: BTreeSet<usize> = routed.iter().copied().collect();
                selected = selected.intersection(&routed).copied().collect();
            }
            probe_targets.push(target);
        }

        let join = self.join.as_ref().map(|(inner_table, cond)| {
            let bucketed = view
                .meta(inner_table)
                .map(|m| m.shard_key == cond.inner())
                .unwrap_or(false);
            if bucketed {
                JoinRouting::Bucketed
            } else {
                JoinRouting::Fanned
            }
        });

        Ok(ShardedPlan {
            template,
            routing: ShardRouting {
                shards: nshards,
                partitioner: view.partitioner.describe(),
                shard_key: meta.shard_key.clone(),
                probe_targets,
                selected: selected.into_iter().collect(),
                join,
            },
        })
    }

    /// Compile and execute.
    pub fn run(&self) -> Result<ShardedResultSet<'db>> {
        self.plan()?.execute_view(self.view.clone())
    }
}

// ---------------------------------------------------------------------
// The sharded plan
// ---------------------------------------------------------------------

/// Which shards one probe step can touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardTargets {
    /// No pruning possible: the probe fans to every shard.
    All,
    /// Pruned to the listed shards (possibly empty: no shard can match).
    Pruned(Vec<usize>),
}

/// How a join scatters across the inner table's shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRouting {
    /// The join column is the inner table's shard key: each outer probe
    /// batch is bucketed to the one inner shard that can hold matches
    /// (original probe order restored on merge).
    Bucketed,
    /// The join column is not the inner shard key: every outer RID chunk
    /// fans to every inner shard.
    Fanned,
}

/// The routing a compiled [`ShardedPlan`] recorded: which shards each
/// stage scatters to, shown by [`ShardedPlan::explain`].
#[derive(Debug, Clone)]
pub struct ShardRouting {
    /// Shard count of the catalog the plan was compiled against.
    pub shards: usize,
    /// The partitioner's description (`hash x4`, `range x2: …`).
    pub partitioner: String,
    /// The outer table's shard-key column.
    pub shard_key: String,
    /// Per probe step: pruned or fanned.
    pub probe_targets: Vec<ShardTargets>,
    /// The final scatter set (intersection of every pruning), ascending.
    pub selected: Vec<usize>,
    /// Join scatter mode, when the plan joins.
    pub join: Option<JoinRouting>,
}

/// A compiled sharded plan: the per-shard physical [`Plan`] template
/// plus the recorded [`ShardRouting`].
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    /// The physical plan each routed shard runs (compiled against shard
    /// 0; every shard shares the schema, so it is valid everywhere).
    pub template: Plan,
    /// Which shards each stage scatters to.
    pub routing: ShardRouting,
}

impl ShardedPlan {
    /// Human-readable rendering: the shard routing (scatter set per
    /// stage, pruned vs fanned join, gather mode), then the per-shard
    /// plan indented beneath it.
    pub fn explain(&self) -> String {
        let r = &self.routing;
        let fmt_set = |s: &[usize]| {
            let items: Vec<String> = s.iter().map(|i| i.to_string()).collect();
            format!("{{{}}}", items.join(", "))
        };
        let mut out = format!(
            "scatter {} across {} shard(s) ({} on {})",
            self.template.table, r.shards, r.partitioner, r.shard_key
        );
        for (step, target) in self.template.probes.iter().zip(&r.probe_targets) {
            let where_to = match target {
                ShardTargets::All => "all shards (fanned)".to_owned(),
                ShardTargets::Pruned(s) => format!("shards {} (pruned)", fmt_set(s)),
            };
            out.push_str(&format!("\n  probe {} -> {}", step.column, where_to));
        }
        if r.selected.len() == r.shards {
            out.push_str("\n  scatter set: all shards");
        } else {
            out.push_str(&format!("\n  scatter set: {} ", fmt_set(&r.selected)));
        }
        if let (Some(j), Some(mode)) = (&self.template.join, &r.join) {
            match mode {
                JoinRouting::Bucketed => out.push_str(&format!(
                    "\n  join {}: outer probe batches bucketed by inner shard key {}",
                    j.inner_table, j.inner_column
                )),
                JoinRouting::Fanned => out.push_str(&format!(
                    "\n  join {}: outer RID chunks fanned to all {} inner shard(s)",
                    j.inner_table, r.shards
                )),
            }
        }
        out.push_str(if self.template.group.is_some() {
            "\n  gather: merge per-shard partial aggregates by group value"
        } else if self.template.join.is_some() {
            "\n  gather: merge join rows in (outer, inner) global order"
        } else {
            "\n  gather: merge RID sets in global row order"
        });
        out.push_str("\nper-shard plan:\n  ");
        out.push_str(&self.template.explain().replace('\n', "\n  "));
        out
    }

    /// Execute against `db` (normally the catalog the plan was compiled
    /// from; names re-resolve, so a stale plan fails with a typed error).
    pub fn execute<'db>(&self, db: &'db ShardedDatabase) -> Result<ShardedResultSet<'db>> {
        self.execute_view(db.view())
    }

    /// Execute against a pinned composed generation — the snapshot twin
    /// of [`ShardedPlan::execute`], byte-identical output. The shard
    /// count re-validates exactly like the live path, so a plan compiled
    /// against a different catalog shape fails typed, not out of bounds.
    pub fn execute_on<'s>(&self, state: &'s ShardedState) -> Result<ShardedResultSet<'s>> {
        self.execute_view(state.view())
    }

    fn execute_view<'v>(&self, view: ShardView<'v>) -> Result<ShardedResultSet<'v>> {
        // The recorded routing indexes shards of the compile-time
        // catalog; running against one with a different shard count
        // would index out of bounds, so it is a typed failure too.
        if self.routing.shards != view.shards.len() {
            return Err(MmdbError::Unsupported {
                what: format!(
                    "plan was compiled for a {}-shard catalog but executed \
                     against {} shard(s); recompile the query",
                    self.routing.shards,
                    view.shards.len()
                ),
            });
        }
        let meta = view.meta(&self.template.table)?;
        let exec = self.template.exec;

        // ---- scatter: selection ----
        // Per routed shard: the local selected RID set (None = all rows,
        // kept symbolic like the unsharded executor does).
        let scatter = &self.routing.selected;
        let per_shard: Vec<(usize, Option<Vec<u32>>)> = if self.template.probes.is_empty() {
            scatter.iter().map(|&s| (s, None)).collect()
        } else {
            let probes_plan = Plan {
                table: self.template.table.clone(),
                probes: self.template.probes.clone(),
                join: None,
                group: None,
                exec,
            };
            // One job per routed shard; a whole per-shard selection is a
            // fat job, so `0` here means one worker per shard (capped at
            // the core count by the pool), not the probe-count adaptive.
            let results = WorkerPool::new(exec.threads).run(scatter.len(), |i| {
                view.shards[scatter[i]].select(&probes_plan)
            });
            let mut v = Vec::with_capacity(scatter.len());
            for (&s, r) in scatter.iter().zip(results) {
                v.push((s, Some(r?)));
            }
            v
        };

        // ---- scatter: join (and grouped-join) jobs ----
        if let Some(j) = &self.template.join {
            let inner_meta = view.meta(&j.inner_table)?;
            // (outer shard, inner shard, outer local RIDs) — bucketed by
            // the owning inner shard when the join column is the inner
            // shard key, fanned to every inner shard otherwise. Bucket
            // order follows the outer stream, so no probe order is lost.
            let mut jobs: Vec<(usize, usize, Vec<u32>)> = Vec::new();
            for (s, sel) in &per_shard {
                let outer_rids: Vec<u32> = match sel {
                    Some(r) => r.clone(),
                    None => (0..meta.locals[*s].len() as u32).collect(),
                };
                if outer_rids.is_empty() {
                    continue;
                }
                match self.routing.join {
                    Some(JoinRouting::Bucketed) => {
                        let keys = view.shards[*s].column_values(
                            &self.template.table,
                            &j.outer_column,
                            Some(&outer_rids),
                        )?;
                        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); view.shards.len()];
                        for (&rid, key) in outer_rids.iter().zip(&keys) {
                            // Placement is the bucketing function: inner
                            // rows were placed by `shard_of`, so an outer
                            // key it cannot place matches no inner row
                            // (no per-row Vec like `probe_shards` makes).
                            if let Ok(t) = view.partitioner.shard_of(key) {
                                buckets[t].push(rid);
                            }
                        }
                        for (t, bucket) in buckets.into_iter().enumerate() {
                            if !bucket.is_empty() && !inner_meta.locals[t].is_empty() {
                                jobs.push((*s, t, bucket));
                            }
                        }
                    }
                    _ => {
                        for t in 0..view.shards.len() {
                            if !inner_meta.locals[t].is_empty() {
                                jobs.push((*s, t, outer_rids.clone()));
                            }
                        }
                    }
                }
            }
            let total: usize = jobs.iter().map(|(_, _, r)| r.len()).sum();
            let pool_threads = if exec.threads == 0 {
                ccindex_parallel::adaptive_threads(total)
            } else {
                exec.threads
            };
            let pool = WorkerPool::new(pool_threads);
            // When there are fewer jobs than workers (one shard, or a
            // hard-pruned scatter), hand each job the leftover
            // parallelism so a big join still spreads its outer RID
            // chunks like the unsharded engine would.
            let job_threads = (pool_threads / jobs.len().max(1)).max(1);

            if let Some(g) = &self.template.group {
                // Grouped join: aggregate inside each scatter job, merge
                // partials by group value at the gather barrier. The
                // group and measure columns can live on *different*
                // backends (outer vs inner side), so the job fetches
                // each side's decoded values through its owning backend
                // and folds the pairs coordinator-side — by decoded
                // value, the same ordered-map discipline
                // `group_aggregate_pairs` applies to domain IDs.
                let partials = pool.run(jobs.len(), |i| -> Result<Vec<GroupRow>> {
                    let (s, t, rids) = &jobs[i];
                    let rows = self.join_job(&view, *s, *t, rids, job_threads)?;
                    let pick = |r: &JoinRow, side: Side| match side {
                        Side::Outer => r.outer_rid,
                        Side::Inner => r.inner_rid,
                    };
                    let side_shard = |side: Side| match side {
                        Side::Outer => *s,
                        Side::Inner => *t,
                    };
                    let side_table = |side: Side| match side {
                        Side::Outer => self.template.table.as_str(),
                        Side::Inner => j.inner_table.as_str(),
                    };
                    let group_rids: Vec<u32> = rows.iter().map(|r| pick(r, g.side)).collect();
                    let group_vals = view.shards[side_shard(g.side)].column_values(
                        side_table(g.side),
                        &g.column,
                        Some(&group_rids),
                    )?;
                    let measure_vals = match &g.measure {
                        None => None,
                        Some((m, side)) => {
                            let m_rids: Vec<u32> = rows.iter().map(|r| pick(r, *side)).collect();
                            let vals = view.shards[side_shard(*side)].column_values(
                                side_table(*side),
                                m,
                                Some(&m_rids),
                            )?;
                            Some((side_table(*side), m.as_str(), vals))
                        }
                    };
                    group_decoded_pairs(group_vals, measure_vals, g.agg)
                });
                let mut collected = Vec::with_capacity(partials.len());
                for p in partials {
                    collected.push(p?);
                }
                return Ok(ShardedResultSet {
                    view,
                    outer_table: self.template.table.clone(),
                    inner_table: Some(j.inner_table.clone()),
                    rows: ResultRows::Groups(merge_group_partials(g.agg, collected)),
                });
            }

            // Plain join: map each job's local pairs to global RIDs and
            // merge back into the sequential join's (outer, inner) order.
            let results = pool.run(jobs.len(), |i| {
                let (s, t, rids) = &jobs[i];
                self.join_job(&view, *s, *t, rids, job_threads)
            });
            let mut all: Vec<JoinRow> = Vec::new();
            for ((s, t, _), rows) in jobs.iter().zip(results) {
                for r in rows? {
                    all.push(JoinRow {
                        outer_rid: meta.locals[*s][r.outer_rid as usize],
                        inner_rid: inner_meta.locals[*t][r.inner_rid as usize],
                    });
                }
            }
            all.sort_unstable();
            return Ok(ShardedResultSet {
                view,
                outer_table: self.template.table.clone(),
                inner_table: Some(j.inner_table.clone()),
                rows: ResultRows::Joined(all),
            });
        }

        // ---- grouped selection (no join) ----
        if let Some(g) = &self.template.group {
            let partials = WorkerPool::new(exec.threads).run(per_shard.len(), |i| {
                let (s, sel) = &per_shard[i];
                let measure = g.measure.as_ref().map(|(m, _)| m.as_str());
                view.shards[*s].group_partial(
                    &self.template.table,
                    &g.column,
                    measure,
                    g.agg,
                    sel.as_deref(),
                )
            });
            let mut collected = Vec::with_capacity(partials.len());
            for p in partials {
                collected.push(p?);
            }
            return Ok(ShardedResultSet {
                view,
                outer_table: self.template.table.clone(),
                inner_table: None,
                rows: ResultRows::Groups(merge_group_partials(g.agg, collected)),
            });
        }

        // ---- plain selection: gather local RIDs into global order ----
        let mut rids: Vec<u32> = Vec::new();
        for (s, sel) in &per_shard {
            match sel {
                Some(local) => rids.extend(local.iter().map(|&l| meta.locals[*s][l as usize])),
                None => rids.extend(meta.locals[*s].iter().copied()),
            }
        }
        rids.sort_unstable();
        Ok(ShardedResultSet {
            view,
            outer_table: self.template.table.clone(),
            inner_table: None,
            rows: ResultRows::Rids(rids),
        })
    }

    /// One scatter job of the join stage: fetch the outer join-key
    /// values from shard `s`'s backend, probe inner shard `t`'s index
    /// with them ([`ShardBackend::join_probe_batch`] — the same
    /// partitioned indexed nested-loop operator whichever side of the
    /// wire it runs on), and pair each outer RID with its matches in
    /// probe order. `threads` is the job's share of the pool's
    /// parallelism — 1 when there are enough jobs to keep every worker
    /// busy, more when the scatter set is smaller than the pool (the
    /// chunk outputs still concatenate in outer-stream order, so the
    /// result is unchanged).
    fn join_job(
        &self,
        view: &ShardView<'_>,
        s: usize,
        t: usize,
        outer_rids: &[u32],
        threads: usize,
    ) -> Result<Vec<JoinRow>> {
        let j = self.template.join.as_ref().expect("join jobs need a join");
        let values = view.shards[s].column_values(
            &self.template.table,
            &j.outer_column,
            Some(outer_rids),
        )?;
        let matches = view.shards[t].join_probe_batch(
            &j.inner_table,
            &j.inner_column,
            j.kind,
            &values,
            self.template.exec.lanes,
            threads,
        )?;
        let mut rows = Vec::new();
        for (&outer_rid, inner) in outer_rids.iter().zip(matches) {
            rows.extend(inner.into_iter().map(|inner_rid| JoinRow {
                outer_rid,
                inner_rid,
            }));
        }
        Ok(rows)
    }
}

/// Fold decoded `(group, measure)` pairs into per-group aggregates, in
/// group-value order — the coordinator-side form of
/// `group_aggregate_pairs` for grouped joins, whose group and measure
/// columns may live on different backends. Keying the ordered map by
/// decoded [`Value`] instead of a shard-local domain ID produces the
/// same rows in the same order (domains sort by value).
fn group_decoded_pairs(
    groups: Vec<Value>,
    // `(table, column, values)` — the names make the typed error.
    measures: Option<(&str, &str, Vec<Value>)>,
    agg: AggFn,
) -> Result<Vec<GroupRow>> {
    let mut acc: BTreeMap<Value, i64> = BTreeMap::new();
    match (agg, measures) {
        (AggFn::Count, _) => {
            for group in groups {
                *acc.entry(group).or_insert(0) += 1;
            }
        }
        (_, None) => {
            return Err(MmdbError::Unsupported {
                what: format!("aggregate {agg:?} needs a measure column"),
            })
        }
        (_, Some((table, column, values))) => {
            for (group, measure) in groups.into_iter().zip(values) {
                let v = match measure {
                    Value::Int(v) => v,
                    Value::Str(_) => {
                        return Err(MmdbError::NonIntegerMeasure {
                            table: table.to_owned(),
                            column: column.to_owned(),
                        })
                    }
                };
                acc.entry(group)
                    .and_modify(|a| {
                        *a = match agg {
                            AggFn::Count | AggFn::Sum => *a + v,
                            AggFn::Min => (*a).min(v),
                            AggFn::Max => (*a).max(v),
                        }
                    })
                    .or_insert(v);
            }
        }
    }
    Ok(acc
        .into_iter()
        .map(|(group, value)| GroupRow { group, value })
        .collect())
}

/// Merge per-shard partial aggregates by (decoded) group value — the
/// cross-shard form of the worker-partial merge inside
/// `group_aggregate_pairs_par`: every aggregate is commutative and
/// associative, and the ordered map keys groups by value, so the merged
/// rows come out in group-value order, byte-identical to the unsharded
/// aggregation (per-shard domains differ, but decoded values agree).
fn merge_group_partials(agg: AggFn, partials: Vec<Vec<GroupRow>>) -> Vec<GroupRow> {
    let mut merged: BTreeMap<Value, i64> = BTreeMap::new();
    for partial in partials {
        for row in partial {
            merged
                .entry(row.group)
                .and_modify(|a| {
                    *a = match agg {
                        AggFn::Count | AggFn::Sum => *a + row.value,
                        AggFn::Min => (*a).min(row.value),
                        AggFn::Max => (*a).max(row.value),
                    }
                })
                .or_insert(row.value);
        }
    }
    merged
        .into_iter()
        .map(|(group, value)| GroupRow { group, value })
        .collect()
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// A sharded query result: the gathered global rows, bound to the
/// catalog so row values can be decoded on demand — the same surface as
/// [`mmdb::ResultSet`], producing byte-identical [`ResultRows`].
#[derive(Debug, Clone)]
pub struct ShardedResultSet<'db> {
    view: ShardView<'db>,
    outer_table: String,
    inner_table: Option<String>,
    rows: ResultRows,
}

impl ShardedResultSet<'_> {
    /// The rows, whatever their shape.
    pub fn rows(&self) -> &ResultRows {
        &self.rows
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        match &self.rows {
            ResultRows::Rids(r) => r.len(),
            ResultRows::Joined(r) => r.len(),
            ResultRows::Groups(r) => r.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selected global RIDs, ascending. Panics on join/group shapes.
    pub fn rids(&self) -> &[u32] {
        match &self.rows {
            ResultRows::Rids(r) => r,
            other => panic!("rids() on a {} result", shape_name(other)),
        }
    }

    /// Join output pairs (global RIDs), in the sequential join's order.
    pub fn join_rows(&self) -> &[JoinRow] {
        match &self.rows {
            ResultRows::Joined(r) => r,
            other => panic!("join_rows() on a {} result", shape_name(other)),
        }
    }

    /// Aggregated groups, in group-value order.
    pub fn groups(&self) -> &[GroupRow] {
        match &self.rows {
            ResultRows::Groups(r) => r,
            other => panic!("groups() on a {} result", shape_name(other)),
        }
    }

    /// Decoded values of `column` for every result row, resolved through
    /// each row's owning shard (outer table binds first for joins). The
    /// result rows bucket by owning shard so each backend answers one
    /// batched fetch (a single round trip for a remote shard), then the
    /// answers reassemble in result order. The column resolves on
    /// *every* shard — including shards owning no result row — so a
    /// schema drift fails typed exactly like the in-process resolver.
    pub fn values(&self, column: &str) -> Result<Vec<Value>> {
        let decode_all = |table: &str, rids: &mut dyn Iterator<Item = u32>| -> Result<Vec<Value>> {
            let meta = self.view.meta(table)?;
            let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.view.shards.len()];
            let mut order: Vec<(u32, u32)> = Vec::new();
            for r in rids {
                let (s, l) = meta.placement[r as usize];
                order.push((s, per_shard[s as usize].len() as u32));
                per_shard[s as usize].push(l);
            }
            let fetched: Vec<Vec<Value>> = self
                .view
                .shards
                .iter()
                .zip(&per_shard)
                .map(|(&shard, locals)| shard.column_values(table, column, Some(locals)))
                .collect::<Result<_>>()?;
            Ok(order
                .into_iter()
                .map(|(s, i)| fetched[s as usize][i as usize].clone())
                .collect())
        };
        match &self.rows {
            ResultRows::Rids(rids) => decode_all(&self.outer_table, &mut rids.iter().copied()),
            ResultRows::Joined(rows) => {
                // Outer binds first, like the unsharded resolver.
                let outer_has = self.view.shards[0]
                    .columns(&self.outer_table)?
                    .iter()
                    .any(|c| c == column);
                let table = if outer_has {
                    &self.outer_table
                } else {
                    self.inner_table
                        .as_ref()
                        .ok_or_else(|| MmdbError::UnknownColumn {
                            table: self.outer_table.clone(),
                            column: column.to_owned(),
                        })?
                };
                decode_all(
                    table,
                    &mut rows
                        .iter()
                        .map(|r| if outer_has { r.outer_rid } else { r.inner_rid }),
                )
            }
            ResultRows::Groups(_) => Err(MmdbError::Unsupported {
                what: "values() on a grouped result; group keys are already \
                       decoded in groups()"
                    .into(),
            }),
        }
    }
}

fn shape_name(rows: &ResultRows) -> &'static str {
    match rows {
        ResultRows::Rids(_) => "selection",
        ResultRows::Joined(_) => "join",
        ResultRows::Groups(_) => "grouped",
    }
}
