//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds with no network access, so the bench targets are
//! written against the real criterion surface (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `criterion_group!` /
//! `criterion_main!`) but link against this minimal harness. It runs each
//! benchmark `sample_size` times, reports the best and mean wall-clock
//! time per sample (plus per-element throughput when configured), and does
//! no statistical analysis.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work performed per benchmark iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (one anonymous function per group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` once, timing it. The surrounding harness calls the
    /// benchmark body once per sample, so one inner iteration per call
    /// keeps total runtime proportional to `sample_size`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }

    fn take_elapsed(&mut self) -> Duration {
        std::mem::take(&mut self.elapsed)
    }
}

#[derive(Debug, Clone, Copy)]
struct GroupSettings {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for GroupSettings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            throughput: None,
        }
    }
}

fn run_samples(label: &str, settings: GroupSettings, mut sample: impl FnMut(&mut Bencher)) {
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut bencher = Bencher::default();
    for _ in 0..settings.sample_size.max(1) {
        sample(&mut bencher);
        let t = bencher.take_elapsed();
        total += t;
        if t < best {
            best = t;
        }
    }
    let mean = total / settings.sample_size.max(1) as u32;
    let rate = settings.throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  {:.1} Melem/s",
            n as f64 / best.as_secs_f64().max(1e-12) / 1e6
        ),
        Throughput::Bytes(n) => format!(
            "  {:.1} MiB/s",
            n as f64 / best.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
        ),
    });
    println!(
        "{label:<48} best {best:>12?}  mean {mean:>12?}{}",
        rate.unwrap_or_default()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: GroupSettings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the work performed per iteration (enables rate reporting).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.settings, |b| f(b, input));
        self
    }

    /// Benchmark a closure of no input.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.settings, &mut f);
        self
    }

    /// End the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: GroupSettings::default(),
            _criterion: self,
        }
    }

    /// Benchmark a closure of no input outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_samples(&id.to_string(), GroupSettings::default(), &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4)).sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 1), &3usize, |b, &x| {
                b.iter(|| x * 2);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 2);
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
    }
}
