//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Admissible element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing a `Vec` whose elements come from `element` and whose
/// length is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_len_and_ranged_len() {
        let mut rng = TestRng::deterministic("vec");
        let v = vec(0u32..100, 7).generate(&mut rng);
        assert_eq!(v.len(), 7);
        for _ in 0..200 {
            let v = vec(0u32..100, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let v = vec(0u32..10, 0..1).generate(&mut rng);
        assert!(v.is_empty());
    }
}
