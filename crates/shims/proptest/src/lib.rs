//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds with no network access, so the subset of
//! `proptest` used by its test suites is reimplemented here behind the same
//! import paths: the [`proptest!`] macro, range / tuple / [`strategy::Just`] /
//! [`prop_oneof!`] / [`collection::vec`] strategies, `prop_assert*!`
//! macros, [`test_runner::Config`] and [`test_runner::TestCaseError`].
//!
//! Differences from the real crate, by design:
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test's name), so failures reproduce without a persistence file;
//! * there is **no shrinking** — a failing case reports the case number
//!   and the assertion message only.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// Each `fn name(pattern in strategy, ...) { body }` item becomes a
/// `#[test]` function that evaluates `body` for `Config::cases` freshly
/// generated inputs. The body may use `prop_assert*!` and `?` with
/// [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?} == {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?} == {:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?} != {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?} != {:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
