//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Generates values of one type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Uniform choice among boxed alternatives (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

/// Box a strategy for [`Union`]; a generic fn (rather than an `as` cast)
/// so `prop_oneof!` arms unify their value types through inference.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let v = (0usize..=3).generate(&mut rng);
            assert!(v <= 3);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("tuples");
        let (a, b) = (0u32..4, 10i64..20).generate(&mut rng);
        assert!(a < 4 && (10..20).contains(&b));
    }

    #[test]
    fn union_picks_every_option_eventually() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
