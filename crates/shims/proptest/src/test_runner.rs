//! Runner configuration, failure type and deterministic RNG.

use core::fmt;

/// Per-`proptest!` block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for source compatibility with
    /// the real crate's `Reject` variant usage.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand for a test-case body result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 stream seeded from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream depends only on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_names_give_different_streams() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_name_reproduces() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
