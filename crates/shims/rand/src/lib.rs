//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds with no network access, so the handful of `rand`
//! APIs the workload generators use are reimplemented here behind the same
//! import paths (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`).
//! The generator is SplitMix64 — deterministic for a given seed, which is
//! all the reproducibility the benchmark protocol needs. It is **not**
//! cryptographically secure and makes no attempt to match the real
//! `StdRng`'s output stream.

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges,
    /// half-open `f64` ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draw one sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        // Floating-point rounding can land exactly on the excluded upper
        // bound (e.g. when the span is within a few ulps of `end`); remap
        // that sliver to `start` to honour the half-open contract.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            };
            // Discard one output so nearby seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_small_range_uniformly_enough() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "counts {counts:?}");
        }
    }

    #[test]
    fn f64_range_never_returns_the_excluded_bound() {
        // The ulp at 1e16 is 2.0, so a span of 2.0 rounds to `end` for
        // unit values near 1.0 without the half-open clamp.
        let mut rng = StdRng::seed_from_u64(9);
        let (lo, hi) = (1e16, 1e16 + 2.0);
        for _ in 0..100_000 {
            let v: f64 = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&v), "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
