//! Array binary search (§3.2) with the paper's specialisations (§6.2).
//!
//! * Shifts instead of division for the midpoint ("We use logical shifts in
//!   place of multiplication and division whenever possible", after
//!   \[WK90\]'s observation).
//! * Sequential equality scan once the range is small ("once the searching
//!   range is small enough, we simply perform the equality test
//!   sequentially on each key. This gives us better performance when there
//!   are less than 5 keys in the range").
//! * Leftmost-match (`lower_bound`) semantics for duplicate handling
//!   (§3.6: "we can find the leftmost element of all the duplicates and
//!   sequentially scan towards right").

use ccindex_common::{
    AccessTracer, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray, SpaceReport,
};

/// Range width below which the search switches to a sequential scan (§6.2:
/// sequential wins "when there are less than 5 keys in the range").
pub const SEQ_THRESHOLD: usize = 5;

/// Binary search over a shared sorted array. Zero space overhead: the
/// index *is* the array.
#[derive(Debug, Clone)]
pub struct BinarySearch<K> {
    array: SortedArray<K>,
}

impl<K: Key> BinarySearch<K> {
    /// Index a sorted slice (copies into aligned storage).
    pub fn build(keys: &[K]) -> Self {
        Self::from_shared(SortedArray::from_slice(keys))
    }

    /// Index an existing shared array without copying.
    pub fn from_shared(array: SortedArray<K>) -> Self {
        Self { array }
    }

    /// The underlying array.
    pub fn array(&self) -> &SortedArray<K> {
        &self.array
    }

    /// Leftmost position with key `>= key`, reporting every touched key and
    /// comparison to `tracer`.
    #[inline]
    pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        let a = self.array.as_slice();
        let mut lo = 0usize;
        let mut len = a.len();
        while len >= SEQ_THRESHOLD {
            // Midpoint by shift, not division (§6.2).
            let half = len >> 1;
            let mid = lo + half;
            tracer.compare();
            tracer.read(self.array.addr_of(mid), K::WIDTH);
            if a[mid] < key {
                lo = mid + 1;
                len -= half + 1;
            } else {
                len = half;
            }
            tracer.descend();
        }
        // Hard-coded sequential tail over < SEQ_THRESHOLD keys.
        let end = lo + len;
        let mut i = lo;
        while i < end {
            tracer.compare();
            tracer.read(self.array.addr_of(i), K::WIDTH);
            if a[i] >= key {
                break;
            }
            i += 1;
        }
        i
    }

    /// Leftmost matching position, traced.
    #[inline]
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(key, tracer);
        if pos < self.array.len() {
            tracer.compare();
            tracer.read(self.array.addr_of(pos), K::WIDTH);
            if self.array.as_slice()[pos] == key {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key> SearchIndex<K> for BinarySearch<K> {
    fn name(&self) -> &'static str {
        "array binary search"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    #[inline]
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        SpaceReport::same(0) // Fig. 7: binary search costs nothing extra.
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: if self.array.is_empty() {
                0
            } else {
                usize::BITS - (self.array.len()).leading_zeros()
            },
            internal_nodes: 0,
            branching: 2,
            node_bytes: 0,
        }
    }
}

impl<K: Key> OrderedIndex<K> for BinarySearch<K> {
    #[inline]
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    fn idx(keys: &[u32]) -> BinarySearch<u32> {
        BinarySearch::build(keys)
    }

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let b = idx(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(b.search(k), Some(i));
        }
    }

    #[test]
    fn misses_between_keys() {
        let keys: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let b = idx(&keys);
        for i in 0..999 {
            assert_eq!(b.search(i * 2 + 1), None);
        }
        assert_eq!(b.search(5000), None);
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let keys: Vec<u32> = vec![2, 4, 4, 4, 9, 9, 100];
        let b = idx(&keys);
        for probe in 0..=110u32 {
            let expected = keys.partition_point(|&k| k < probe);
            assert_eq!(b.lower_bound(probe), expected, "probe {probe}");
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        let keys = vec![1u32, 5, 5, 5, 5, 7];
        let b = idx(&keys);
        assert_eq!(b.search(5), Some(1));
    }

    #[test]
    fn empty_and_single() {
        let b = idx(&[]);
        assert_eq!(b.search(1), None);
        assert_eq!(b.lower_bound(1), 0);
        let b = idx(&[42]);
        assert_eq!(b.search(42), Some(0));
        assert_eq!(b.search(41), None);
        assert_eq!(b.lower_bound(43), 1);
    }

    #[test]
    fn comparison_count_is_logarithmic() {
        let keys: Vec<u32> = (0..1_048_576u32).collect(); // 2^20
        let b = BinarySearch::build(&keys);
        let mut t = CountingTracer::new();
        b.search_with(524_287, &mut t);
        // log2(2^20) = 20 halvings, minus the sequential tail trade-off,
        // plus the final equality check; allow small slack.
        assert!(
            (18..=26).contains(&(t.compares as usize)),
            "compares = {}",
            t.compares
        );
    }

    #[test]
    fn access_trace_touches_distinct_cache_lines() {
        // §3.2: for an array much larger than the cache, the number of
        // *distinct* lines touched per probe is ~ comparisons.
        let keys: Vec<u32> = (0..1 << 20).collect();
        let b = BinarySearch::build(&keys);
        let mut t = ccindex_common::RecordingTracer::new();
        b.search_with(777_777, &mut t);
        let mut lines: Vec<usize> = t.accesses.iter().map(|a| a.1 / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.len() >= 14, "distinct lines = {}", lines.len());
    }

    #[test]
    fn space_is_zero() {
        let b = idx(&[1, 2, 3]);
        assert_eq!(b.space().indirect_bytes, 0);
        assert_eq!(b.space().direct_bytes, 0);
    }

    #[test]
    fn works_with_signed_keys() {
        let keys = vec![-100i32, -5, 0, 3, 900];
        let b = BinarySearch::build(&keys);
        assert_eq!(b.search(-5), Some(1));
        assert_eq!(b.search(1), None);
        assert_eq!(b.lower_bound(-1000), 0);
    }
}
