//! Interpolation search (§1, §3, Figs. 10–11).
//!
//! Estimates the probe's position from the key's value assuming a linear
//! distribution, then recurses on the narrowed range. The paper's verdict
//! (§6.3): "The performance of interpolation search depends on how well the
//! data fits a linear distribution. ... we also did some tests on
//! non-uniform data and interpolation search performs even worse than
//! binary search. So in practice, we would not recommend using
//! interpolation search." — reproduced by the `fig10`/`fig11` harness with
//! the `Polynomial` key distribution.
//!
//! The implementation guards against the classic failure modes: zero-width
//! value ranges (duplicates), estimates that do not shrink the range
//! (skewed data), and overflow, by clamping the estimate strictly inside
//! the open interval and falling back to a binary step whenever a round
//! fails to cut the range by at least one.

use ccindex_common::{
    AccessTracer, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray, SpaceReport,
};

/// Interpolation search over a shared sorted array (zero space overhead).
#[derive(Debug, Clone)]
pub struct InterpolationSearch<K> {
    array: SortedArray<K>,
}

impl<K: Key> InterpolationSearch<K> {
    /// Index a sorted slice.
    pub fn build(keys: &[K]) -> Self {
        Self::from_shared(SortedArray::from_slice(keys))
    }

    /// Index an existing shared array without copying.
    pub fn from_shared(array: SortedArray<K>) -> Self {
        Self { array }
    }

    /// Leftmost position with key `>= key`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        let a = self.array.as_slice();
        if a.is_empty() {
            return 0;
        }
        let mut lo = 0usize;
        let mut hi = a.len() - 1; // inclusive
                                  // Check the endpoints once; they also seed the interpolation.
        tracer.compare();
        let klo = self.array.get_traced(lo, tracer);
        if key <= klo {
            return 0;
        }
        tracer.compare();
        let khi = self.array.get_traced(hi, tracer);
        if key > khi {
            return a.len();
        }
        let mut vlo = klo.to_f64();
        let mut vhi = khi.to_f64();
        let kv = key.to_f64();
        // Invariant: a[lo] < key <= a[hi].
        while hi - lo > 1 {
            let width = (hi - lo) as f64;
            let frac = if vhi > vlo {
                (kv - vlo) / (vhi - vlo)
            } else {
                0.5
            };
            let mut mid = lo + (frac * width) as usize;
            // Keep the probe strictly inside (lo, hi) so the range always
            // shrinks; degenerate estimates become a binary step.
            mid = mid.clamp(lo + 1, hi - 1);
            tracer.compare();
            let km = self.array.get_traced(mid, tracer);
            if km < key {
                lo = mid;
                vlo = km.to_f64();
            } else {
                hi = mid;
                vhi = km.to_f64();
            }
            tracer.descend();
        }
        hi
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(key, tracer);
        if pos < self.array.len() {
            tracer.compare();
            if self.array.get_traced(pos, tracer) == key {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key> SearchIndex<K> for InterpolationSearch<K> {
    fn name(&self) -> &'static str {
        "interpolation search"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        SpaceReport::same(0)
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: 0, // data dependent
            internal_nodes: 0,
            branching: 2,
            node_bytes: 0,
        }
    }
}

impl<K: Key> OrderedIndex<K> for InterpolationSearch<K> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_all_on_linear_data() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 10).collect();
        let s = InterpolationSearch::build(&keys);
        for (i, &k) in keys.iter().enumerate().step_by(37) {
            assert_eq!(s.search(k), Some(i));
        }
        assert_eq!(s.search(5), None);
        assert_eq!(s.search(1_000_000), None);
    }

    #[test]
    fn lower_bound_matches_partition_point_on_skewed_data() {
        // Quadratic value growth — the non-uniform case.
        let keys: Vec<u32> = (0..2000u32).map(|i| i * i).collect();
        let s = InterpolationSearch::build(&keys);
        for probe in (0..4_000_000u32).step_by(7919) {
            let expected = keys.partition_point(|&k| k < probe);
            assert_eq!(s.lower_bound(probe), expected, "probe {probe}");
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        let keys = vec![1u32, 5, 5, 5, 5, 7, 7, 9];
        let s = InterpolationSearch::build(&keys);
        assert_eq!(s.search(5), Some(1));
        assert_eq!(s.search(7), Some(5));
        assert_eq!(s.lower_bound(6), 5);
    }

    #[test]
    fn all_equal_keys_terminate() {
        let keys = vec![3u32; 1000];
        let s = InterpolationSearch::build(&keys);
        assert_eq!(s.search(3), Some(0));
        assert_eq!(s.search(2), None);
        assert_eq!(s.search(4), None);
    }

    #[test]
    fn linear_data_needs_fewer_probes_than_binary_log() {
        let keys: Vec<u32> = (0..1 << 20).collect();
        let s = InterpolationSearch::build(&keys);
        let mut total = 0u64;
        for probe in (0..1 << 20).step_by(10007) {
            let mut t = CountingTracer::new();
            s.search_with(probe, &mut t);
            total += t.compares;
        }
        let avg = total as f64 / ((1usize << 20) as f64 / 10007.0);
        assert!(avg < 8.0, "expected ~O(log log n) probes, got avg {avg}");
    }

    #[test]
    fn skewed_data_degrades_gracefully_but_terminates() {
        // Exponential-ish growth is interpolation's bad case; correctness
        // and termination must still hold.
        let keys: Vec<u64> = (0..60).map(|i| 1u64 << i).collect();
        let s = InterpolationSearch::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(s.search(k), Some(i));
            assert_eq!(
                s.search(k + 1),
                if k + 1 == keys[(i + 1).min(59)] {
                    Some(i + 1)
                } else {
                    None
                }
            );
        }
    }

    #[test]
    fn empty_and_boundaries() {
        let s = InterpolationSearch::<u32>::build(&[]);
        assert_eq!(s.search(0), None);
        assert_eq!(s.lower_bound(0), 0);
        let s = InterpolationSearch::build(&[7u32]);
        assert_eq!(s.search(7), Some(0));
        assert_eq!(s.lower_bound(8), 1);
        assert_eq!(s.lower_bound(0), 0);
    }
}
