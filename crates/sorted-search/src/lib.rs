//! Array search baselines: binary search and interpolation search.
//!
//! §3.2: "The problem with binary search is that many accesses to elements
//! of the sorted array result in a cache miss ... In the worst case, the
//! number of cache misses is of the order of the number of key comparisons."
//! These are the zero-extra-space baselines of the space/time study
//! (Figs. 2/14): binary search anchors the "no space, slow" end of the
//! frontier, and interpolation search is the distribution-sensitive outlier
//! of Figs. 10–11.
//!
//! Per §6.2 the binary search is specialised: the loop uses shifts rather
//! than division and finishes with a hard-coded sequential scan once the
//! remaining range holds fewer than [`binary::SEQ_THRESHOLD`] keys ("once
//! the searching range is small enough, we simply perform the equality test
//! sequentially on each key").

#![deny(unsafe_op_in_unsafe_fn)]

pub mod binary;
pub mod interpolation;

pub use binary::{BinarySearch, SEQ_THRESHOLD};
pub use interpolation::InterpolationSearch;
