//! Typed storage faults: every way a store file can disappoint,
//! named. The engine layer maps these 1:1 onto `MmdbError::Storage`.

use std::fmt;

/// What went wrong with a store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The file could not be opened or created.
    Open,
    /// A read syscall failed or came up short.
    Read,
    /// A write syscall failed.
    Write,
    /// The bytes are not a ccindex store (bad magic, impossible
    /// offsets, truncated structure).
    Format,
    /// The structure parsed but a checksum or internal invariant
    /// failed — the file was damaged after it was written.
    Corrupt,
    /// The file speaks a store format version this build does not.
    Version,
}

impl StoreFault {
    fn stage(self) -> &'static str {
        match self {
            StoreFault::Open => "opening",
            StoreFault::Read => "reading",
            StoreFault::Write => "writing",
            StoreFault::Format => "not a ccindex store",
            StoreFault::Corrupt => "corrupted store",
            StoreFault::Version => "store format version mismatch",
        }
    }
}

/// A typed storage error naming the file and the fault. Never a
/// panic: corrupted or hostile input must surface as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The file (or in-memory buffer label) at fault.
    pub path: String,
    /// The fault category.
    pub fault: StoreFault,
    /// Human-readable specifics.
    pub detail: String,
}

impl StoreError {
    /// Build an error for `path`.
    pub fn new(path: &str, fault: StoreFault, detail: impl Into<String>) -> Self {
        Self {
            path: path.to_owned(),
            fault,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage fault on `{}` ({}): {}",
            self.path,
            self.fault.stage(),
            self.detail
        )
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_fault() {
        let e = StoreError::new("/tmp/cat.ccs", StoreFault::Corrupt, "page 3 crc mismatch");
        let s = e.to_string();
        assert!(s.contains("/tmp/cat.ccs"), "{s}");
        assert!(s.contains("corrupted"), "{s}");
        assert!(s.contains("page 3"), "{s}");
    }
}
