//! Versioned, checksummed, paged on-disk container for serialized
//! catalogs and indexes.
//!
//! The paper's CSS-trees are contiguous implicit node arrays over
//! sorted data — cheap to build and, by the same token, naturally
//! page-serializable. This crate is the container half of that story:
//! a dumb, dependency-free **paged store** in the spirit of geomedea's
//! packed R-tree files (streaming per-level writes, a footer locating
//! every section, reads of only the touched slice). The schema half —
//! what the pages *mean* — lives in `mmdb`'s persist module, which
//! writes one page per CSS-tree directory level, per column value
//! vector, per RID list, and a manifest tying them together.
//!
//! ## File layout
//!
//! ```text
//! +--------+-----------------+------------------------------+---------+
//! | header | page 0 … page N | footer                       | trailer |
//! | 8 B    | raw payloads    | page table + manifest        | 24 B    |
//! +--------+-----------------+------------------------------+---------+
//! ```
//!
//! * **header** — magic `CCSP`, format version (u16 LE), reserved.
//! * **pages** — raw payload bytes, back to back. Each page's kind,
//!   offset, length, and CRC-32 live in the footer's page table, so a
//!   reader seeks straight to the pages it needs and validates each
//!   one independently — a cold start reads exactly the levels a
//!   probe descent touches, not the whole file.
//! * **footer** — page count, one `(kind, offset, len, crc)` entry per
//!   page, then the caller's manifest blob.
//! * **trailer** — footer offset + length + CRC and magic `CCSF`,
//!   fixed-size at EOF so open starts by reading 24 bytes.
//!
//! Every failure mode — missing file, truncation, bit flips, foreign
//! magic, future format versions — surfaces as a typed [`StoreError`]
//! naming the path and fault; nothing in this crate panics on
//! corrupted input.

#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_code)]

mod error;
mod reader;
mod writer;

pub use error::{StoreError, StoreFault};
pub use reader::StoreReader;
pub use writer::{write_file, StoreWriter};

/// Store magic — identifies a ccindex page store.
pub const MAGIC: [u8; 4] = *b"CCSP";

/// Footer magic, fixed-size at EOF.
pub const FOOT_MAGIC: [u8; 4] = *b"CCSF";

/// Store format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Header length: magic + version + reserved.
pub(crate) const HEADER_LEN: usize = 8;

/// Trailer length: footer offset (u64) + length (u64) + CRC (u32) +
/// [`FOOT_MAGIC`].
pub(crate) const TRAILER_LEN: usize = 24;

/// Upper bound on the page count a footer may declare (guards
/// allocation against a corrupted or hostile count field). Writers
/// panic rather than emit a container readers would reject.
pub const MAX_PAGES: u32 = 1 << 20;

/// What a page holds. The store treats payloads as opaque bytes; the
/// kind travels in the page table so readers can type-check a page
/// before decoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// A sorted `u32` key array (LE), shared by a column's indexes.
    SortedKeys,
    /// A column's domain dictionary: its distinct values, sorted.
    DomainValues,
    /// A column's dense domain-ID vector (`u32` LE per row).
    ColumnIds,
    /// The sorted key half of a RID list (`u32` LE).
    RidKeys,
    /// The RID half of a RID list, parallel to its keys (`u32` LE).
    RidValues,
    /// One CSS-tree directory level's node slots (`u32` LE).
    CssLevel,
    /// Uninterpreted bytes (the escape hatch for layered formats).
    Raw,
}

impl PageKind {
    /// Every kind, in tag order.
    pub const ALL: [PageKind; 7] = [
        PageKind::SortedKeys,
        PageKind::DomainValues,
        PageKind::ColumnIds,
        PageKind::RidKeys,
        PageKind::RidValues,
        PageKind::CssLevel,
        PageKind::Raw,
    ];

    /// The on-disk tag.
    pub fn code(self) -> u8 {
        match self {
            PageKind::SortedKeys => 0,
            PageKind::DomainValues => 1,
            PageKind::ColumnIds => 2,
            PageKind::RidKeys => 3,
            PageKind::RidValues => 4,
            PageKind::CssLevel => 5,
            PageKind::Raw => 6,
        }
    }

    /// Decode an on-disk tag; `None` for tags this build doesn't know.
    pub fn from_code(code: u8) -> Option<PageKind> {
        PageKind::ALL.get(code as usize).copied()
    }
}

/// One page's entry in the footer's page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PageEntry {
    pub(crate) kind: PageKind,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) crc: u32,
}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the polynomial gzip and zlib use) — the
/// per-page and footer checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn page_kind_codes_roundtrip() {
        for kind in PageKind::ALL {
            assert_eq!(PageKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(PageKind::from_code(200), None);
    }
}
