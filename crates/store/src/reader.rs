//! Store reader: opens an image by reading the 24-byte trailer and
//! the footer it locates, then serves individual pages on demand —
//! a file-backed reader seeks to exactly the pages the caller asks
//! for (the levels a probe descent touches), never the whole file.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::{StoreError, StoreFault};
use crate::{
    crc32, PageEntry, PageKind, FOOT_MAGIC, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_PAGES,
    TRAILER_LEN,
};

/// Where the image's bytes live.
#[derive(Debug)]
enum Source {
    /// The whole image in memory (a wire-transferred snapshot).
    Bytes(Vec<u8>),
    /// An open file; pages are range-read on demand.
    File { file: File, len: u64 },
}

/// An opened store: validated header, footer, and page table; page
/// payloads are fetched (and CRC-checked) individually.
#[derive(Debug)]
pub struct StoreReader {
    path: String,
    source: Source,
    pages: Vec<PageEntry>,
    manifest: Vec<u8>,
}

impl StoreReader {
    /// Open an in-memory image. `label` names the buffer in errors
    /// (e.g. a peer address for a wire-transferred snapshot).
    pub fn open_bytes(bytes: Vec<u8>, label: &str) -> Result<Self, StoreError> {
        let len = bytes.len() as u64;
        Self::open(label.to_owned(), Source::Bytes(bytes), len)
    }

    /// Open a store file. Reads the trailer, footer, and header —
    /// not the pages.
    pub fn open_file(path: &Path) -> Result<Self, StoreError> {
        let label = path.display().to_string();
        let file = File::open(path).map_err(|e| {
            StoreError::new(&label, StoreFault::Open, format!("opening store: {e}"))
        })?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::new(&label, StoreFault::Read, format!("stat: {e}")))?
            .len();
        Self::open(label, Source::File { file, len }, len)
    }

    fn open(path: String, mut source: Source, len: u64) -> Result<Self, StoreError> {
        let fail = |fault: StoreFault, detail: String| StoreError::new(&path, fault, detail);
        if len < (HEADER_LEN + TRAILER_LEN) as u64 {
            return Err(fail(
                StoreFault::Format,
                format!("{len} bytes is shorter than an empty store"),
            ));
        }
        // Header: magic + version.
        let header = read_at(&mut source, &path, 0, HEADER_LEN as u64)?;
        if header[..4] != MAGIC {
            return Err(fail(
                StoreFault::Format,
                format!(
                    "bad magic {:02x}{:02x}{:02x}{:02x} (not a ccindex store)",
                    header[0], header[1], header[2], header[3]
                ),
            ));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(fail(
                StoreFault::Version,
                format!("file speaks store format v{version}, this build speaks v{FORMAT_VERSION}"),
            ));
        }
        // Trailer: footer location + checksum + magic.
        let trailer = read_at(
            &mut source,
            &path,
            len - TRAILER_LEN as u64,
            TRAILER_LEN as u64,
        )?;
        if trailer[20..24] != FOOT_MAGIC {
            return Err(fail(
                StoreFault::Format,
                "bad footer magic (truncated or overwritten tail)".to_owned(),
            ));
        }
        let footer_off = u64_at(&trailer, 0);
        let footer_len = u64_at(&trailer, 8);
        let footer_crc = u32_at(&trailer, 16);
        let footer_end = footer_off.checked_add(footer_len);
        if footer_off < HEADER_LEN as u64 || footer_end != Some(len - TRAILER_LEN as u64) {
            return Err(fail(
                StoreFault::Format,
                format!("footer span {footer_off}+{footer_len} does not fit a {len}-byte file"),
            ));
        }
        let footer = read_at(&mut source, &path, footer_off, footer_len)?;
        let got_crc = crc32(&footer);
        if got_crc != footer_crc {
            return Err(fail(
                StoreFault::Corrupt,
                format!("footer crc {got_crc:08x}, trailer says {footer_crc:08x}"),
            ));
        }
        // Page table + manifest.
        let mut cursor = Cursor {
            buf: &footer,
            pos: 0,
            path: &path,
        };
        let count = cursor.u32("page count")?;
        if count > MAX_PAGES {
            return Err(fail(
                StoreFault::Corrupt,
                format!("page count {count} exceeds the {MAX_PAGES} cap"),
            ));
        }
        let mut pages = Vec::with_capacity(count as usize);
        for id in 0..count {
            let code = cursor.u8("page kind")?;
            let kind = PageKind::from_code(code).ok_or_else(|| {
                fail(
                    StoreFault::Corrupt,
                    format!("page {id} has unknown kind tag {code}"),
                )
            })?;
            let offset = cursor.u64("page offset")?;
            let page_len = cursor.u64("page length")?;
            let crc = cursor.u32("page crc")?;
            let end = offset.checked_add(page_len);
            if offset < HEADER_LEN as u64 || end.is_none() || end.unwrap_or(u64::MAX) > footer_off {
                return Err(fail(
                    StoreFault::Corrupt,
                    format!("page {id} span {offset}+{page_len} escapes the page region"),
                ));
            }
            pages.push(PageEntry {
                kind,
                offset,
                len: page_len,
                crc,
            });
        }
        let manifest_len = cursor.u32("manifest length")? as usize;
        let manifest = cursor.bytes(manifest_len, "manifest")?.to_vec();
        cursor.expect_end()?;
        Ok(Self {
            path,
            source,
            pages,
            manifest,
        })
    }

    /// The caller's manifest blob, exactly as written.
    pub fn manifest(&self) -> &[u8] {
        &self.manifest
    }

    /// The file (or buffer label) this reader was opened from.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of pages in the image.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// A page's declared kind, or `None` for an out-of-range id.
    pub fn page_kind(&self, id: u32) -> Option<PageKind> {
        self.pages.get(id as usize).map(|p| p.kind)
    }

    /// A page's payload length in bytes, or `None` for an
    /// out-of-range id.
    pub fn page_len(&self, id: u32) -> Option<u64> {
        self.pages.get(id as usize).map(|p| p.len)
    }

    /// Fetch one page's payload, validating its CRC. A file-backed
    /// reader reads exactly this page's byte range.
    pub fn read_page(&mut self, id: u32) -> Result<Vec<u8>, StoreError> {
        let entry = *self.pages.get(id as usize).ok_or_else(|| {
            StoreError::new(
                &self.path,
                StoreFault::Corrupt,
                format!("page id {id} out of range ({} pages)", self.pages.len()),
            )
        })?;
        let bytes = read_at(&mut self.source, &self.path, entry.offset, entry.len)?;
        let got = crc32(&bytes);
        if got != entry.crc {
            return Err(StoreError::new(
                &self.path,
                StoreFault::Corrupt,
                format!("page {id} crc {got:08x}, page table says {:08x}", entry.crc),
            ));
        }
        Ok(bytes)
    }

    /// [`read_page`](Self::read_page), additionally checking the page
    /// was written with the expected kind.
    pub fn read_page_expect(&mut self, id: u32, kind: PageKind) -> Result<Vec<u8>, StoreError> {
        match self.page_kind(id) {
            Some(k) if k == kind => self.read_page(id),
            Some(other) => Err(StoreError::new(
                &self.path,
                StoreFault::Corrupt,
                format!("page {id} is {other:?}, expected {kind:?}"),
            )),
            None => Err(StoreError::new(
                &self.path,
                StoreFault::Corrupt,
                format!("page id {id} out of range ({} pages)", self.pages.len()),
            )),
        }
    }
}

/// Read `len` bytes at `offset`, bounds-checked against the source.
fn read_at(source: &mut Source, path: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
    let fits = |total: u64| offset.checked_add(len).is_some_and(|end| end <= total);
    match source {
        Source::Bytes(bytes) => {
            if !fits(bytes.len() as u64) {
                return Err(StoreError::new(
                    path,
                    StoreFault::Format,
                    format!("read {offset}+{len} escapes a {}-byte image", bytes.len()),
                ));
            }
            Ok(bytes[offset as usize..(offset + len) as usize].to_vec())
        }
        Source::File { file, len: total } => {
            if !fits(*total) {
                return Err(StoreError::new(
                    path,
                    StoreFault::Format,
                    format!("read {offset}+{len} escapes a {total}-byte file"),
                ));
            }
            file.seek(SeekFrom::Start(offset)).map_err(|e| {
                StoreError::new(path, StoreFault::Read, format!("seek to {offset}: {e}"))
            })?;
            let mut buf = vec![0u8; len as usize];
            file.read_exact(&mut buf).map_err(|e| {
                StoreError::new(
                    path,
                    StoreFault::Read,
                    format!("reading {len} bytes at {offset}: {e}"),
                )
            })?;
            Ok(buf)
        }
    }
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Bounds-checked footer cursor: a short footer is a typed
/// [`StoreFault::Corrupt`], never a slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(StoreError::new(
                self.path,
                StoreFault::Corrupt,
                format!("footer truncated reading {what}"),
            )),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32_at(self.bytes(4, what)?, 0))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64_at(self.bytes(8, what)?, 0))
    }

    fn expect_end(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::new(
                self.path,
                StoreFault::Corrupt,
                format!(
                    "{} trailing bytes after the manifest",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreWriter;

    fn sample_image() -> Vec<u8> {
        let mut w = StoreWriter::new();
        w.page(PageKind::SortedKeys, &[1, 2, 3, 4]);
        w.page(PageKind::CssLevel, b"level zero");
        w.page(PageKind::Raw, &[]);
        w.finish(b"manifest blob")
    }

    #[test]
    fn image_roundtrips_through_bytes() {
        let mut r = StoreReader::open_bytes(sample_image(), "mem").expect("open");
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.manifest(), b"manifest blob");
        assert_eq!(r.page_kind(0), Some(PageKind::SortedKeys));
        assert_eq!(r.read_page(0).expect("page 0"), vec![1, 2, 3, 4]);
        assert_eq!(r.read_page(1).expect("page 1"), b"level zero");
        assert_eq!(r.read_page(2).expect("page 2"), Vec::<u8>::new());
        assert_eq!(
            r.read_page_expect(1, PageKind::CssLevel).expect("typed"),
            b"level zero"
        );
    }

    #[test]
    fn image_roundtrips_through_a_file() {
        let path = std::env::temp_dir().join(format!(
            "ccindex-store-roundtrip-{}.ccs",
            std::process::id()
        ));
        crate::write_file(&path, &sample_image()).expect("write");
        let mut r = StoreReader::open_file(&path).expect("open");
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.read_page(1).expect("page 1"), b"level zero");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_open_error() {
        let err = StoreReader::open_file(Path::new("/nonexistent/cat.ccs"))
            .expect_err("missing file must fail");
        assert_eq!(err.fault, StoreFault::Open);
    }

    #[test]
    fn bit_flip_in_a_page_is_corrupt() {
        let mut bytes = sample_image();
        bytes[HEADER_LEN] ^= 0x01; // first byte of page 0
        let mut r = StoreReader::open_bytes(bytes, "mem").expect("table still intact");
        let err = r.read_page(0).expect_err("flipped page must fail");
        assert_eq!(err.fault, StoreFault::Corrupt);
        assert!(err.detail.contains("crc"), "{err}");
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut bytes = sample_image();
        bytes.truncate(bytes.len() - 3);
        let err = StoreReader::open_bytes(bytes, "mem").expect_err("truncation must fail");
        assert_eq!(err.fault, StoreFault::Format);
    }

    #[test]
    fn forged_footer_magic_is_a_format_error() {
        let mut bytes = sample_image();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(b"XXXX");
        let err = StoreReader::open_bytes(bytes, "mem").expect_err("forged magic must fail");
        assert_eq!(err.fault, StoreFault::Format);
        assert!(err.detail.contains("footer magic"), "{err}");
    }

    #[test]
    fn forged_header_magic_is_a_format_error() {
        let mut bytes = sample_image();
        bytes[0] = b'X';
        let err = StoreReader::open_bytes(bytes, "mem").expect_err("forged magic must fail");
        assert_eq!(err.fault, StoreFault::Format);
        assert!(err.detail.contains("magic"), "{err}");
    }

    #[test]
    fn future_version_is_a_version_error() {
        let mut bytes = sample_image();
        bytes[4] = 99;
        let err = StoreReader::open_bytes(bytes, "mem").expect_err("future version must fail");
        assert_eq!(err.fault, StoreFault::Version);
        assert!(err.detail.contains("v99"), "{err}");
    }

    #[test]
    fn corrupted_footer_is_corrupt() {
        let mut bytes = sample_image();
        // Flip a byte inside the footer (between the last page and the
        // trailer). The last page is empty, so the footer starts right
        // after page 1's payload.
        let at = bytes.len() - TRAILER_LEN - 2;
        bytes[at] ^= 0xFF;
        let err = StoreReader::open_bytes(bytes, "mem").expect_err("footer damage must fail");
        assert_eq!(err.fault, StoreFault::Corrupt);
    }
}
