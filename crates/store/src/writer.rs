//! Streaming store writer: pages are appended as they are produced
//! (a CSS-tree writes one page per directory level, geomedea-style),
//! the footer and trailer land last.

use std::path::Path;

use crate::error::{StoreError, StoreFault};
use crate::{crc32, PageEntry, PageKind, FOOT_MAGIC, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_PAGES};

/// Builds a store image in memory: header, then pages in append
/// order, then [`finish`](StoreWriter::finish) seals the footer and
/// trailer. The image is a plain `Vec<u8>` so the identical bytes can
/// be written to a file *or* streamed over the wire as a snapshot.
#[derive(Debug)]
pub struct StoreWriter {
    buf: Vec<u8>,
    pages: Vec<PageEntry>,
}

impl Default for StoreWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreWriter {
    /// Start a new image (writes the header).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes()); // reserved
        Self {
            buf,
            pages: Vec::new(),
        }
    }

    /// Append one page and return its id (its index in the page
    /// table). Panics if the writer exceeds [`MAX_PAGES`] — a builder
    /// bug, not an input fault.
    pub fn page(&mut self, kind: PageKind, bytes: &[u8]) -> u32 {
        assert!(
            (self.pages.len() as u32) < MAX_PAGES,
            "store image exceeds {MAX_PAGES} pages"
        );
        let id = self.pages.len() as u32;
        self.pages.push(PageEntry {
            kind,
            offset: self.buf.len() as u64,
            len: bytes.len() as u64,
            crc: crc32(bytes),
        });
        self.buf.extend_from_slice(bytes);
        id
    }

    /// Number of pages appended so far.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Seal the image: write the page table, the caller's `manifest`
    /// blob, and the trailer. Returns the complete store bytes.
    pub fn finish(mut self, manifest: &[u8]) -> Vec<u8> {
        let footer_off = self.buf.len() as u64;
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for page in &self.pages {
            footer.push(page.kind.code());
            footer.extend_from_slice(&page.offset.to_le_bytes());
            footer.extend_from_slice(&page.len.to_le_bytes());
            footer.extend_from_slice(&page.crc.to_le_bytes());
        }
        footer.extend_from_slice(&(manifest.len() as u32).to_le_bytes());
        footer.extend_from_slice(manifest);
        let footer_crc = crc32(&footer);
        self.buf.extend_from_slice(&footer);
        self.buf.extend_from_slice(&footer_off.to_le_bytes());
        self.buf
            .extend_from_slice(&(footer.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&footer_crc.to_le_bytes());
        self.buf.extend_from_slice(&FOOT_MAGIC);
        self.buf
    }
}

/// Write a finished store image to `path`, mapping every I/O failure
/// to a typed [`StoreError`].
pub fn write_file(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let label = path.display().to_string();
    std::fs::write(path, bytes)
        .map_err(|e| StoreError::new(&label, StoreFault::Write, format!("writing store: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_image_is_header_footer_trailer() {
        let bytes = StoreWriter::new().finish(b"");
        // header + count(4) + manifest_len(4) + trailer
        assert_eq!(bytes.len(), HEADER_LEN + 4 + 4 + crate::TRAILER_LEN);
        assert_eq!(&bytes[..4], &MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], &FOOT_MAGIC);
    }

    #[test]
    fn write_to_unwritable_path_is_a_typed_error() {
        let err = write_file(Path::new("/nonexistent-dir/x/y.ccs"), b"abc")
            .expect_err("unwritable path must fail");
        assert_eq!(err.fault, StoreFault::Write);
        assert!(err.path.contains("nonexistent-dir"), "{err}");
    }
}
