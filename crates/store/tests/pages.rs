//! Store container property tests: page encode→decode round-trips
//! for every page kind, and random single-byte corruption anywhere in
//! the image yields a typed error or detectably-wrong bytes — never a
//! panic.

use ccindex_store::{PageKind, StoreError, StoreReader, StoreWriter};
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so one proptest-drawn
/// seed fans out into arbitrarily many payload choices.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

proptest! {
    /// One random page per kind, in a random order, plus a random
    /// manifest: everything reads back byte-identical with the kind
    /// and length the writer declared.
    #[test]
    fn every_page_kind_roundtrips(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut kinds = PageKind::ALL.to_vec();
        // Shuffle so the page table sees kinds in arbitrary order.
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, g.below(i as u64 + 1) as usize);
        }
        let payloads: Vec<(PageKind, Vec<u8>)> =
            kinds.into_iter().map(|k| (k, g.bytes(200))).collect();
        let manifest = g.bytes(100);

        let mut w = StoreWriter::new();
        for (kind, bytes) in &payloads {
            w.page(*kind, bytes);
        }
        let image = w.finish(&manifest);

        let mut r = StoreReader::open_bytes(image, "prop").expect("reopen");
        prop_assert_eq!(r.manifest(), &manifest[..]);
        prop_assert_eq!(r.page_count() as usize, payloads.len());
        for (id, (kind, bytes)) in payloads.iter().enumerate() {
            prop_assert_eq!(r.page_kind(id as u32), Some(*kind));
            prop_assert_eq!(r.page_len(id as u32), Some(bytes.len() as u64));
            let back = r.read_page_expect(id as u32, *kind).expect("page");
            prop_assert_eq!(&back, bytes);
        }
    }

    /// Flip one random byte anywhere in the image: open + full read
    /// either fails typed or (for a flip inside the reserved header
    /// padding) leaves every page intact. No panic, ever.
    #[test]
    fn single_byte_corruption_never_panics(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut w = StoreWriter::new();
        for kind in PageKind::ALL {
            w.page(kind, &g.bytes(64));
        }
        let mut image = w.finish(&g.bytes(32));
        let at = g.below(image.len() as u64) as usize;
        image[at] ^= 1 + g.below(255) as u8;

        let full_read = |mut r: StoreReader| -> Result<(), StoreError> {
            for id in 0..r.page_count() {
                r.read_page(id)?;
            }
            Ok(())
        };
        // Either a typed error at open, a typed error at page read, or
        // the flip hit the 2 reserved header bytes and nothing changed.
        if let Ok(Ok(())) = StoreReader::open_bytes(image, "prop").map(full_read) {
            prop_assert!((6..8).contains(&at), "flip at {at} went unnoticed");
        }
    }
}
