//! Bulk construction of a balanced T-tree from a sorted array.
//!
//! The OLAP setting (§2.3) never inserts incrementally: the tree is rebuilt
//! from the sorted array after each update batch. Construction therefore
//! packs every node full (except the last) and shapes a perfectly balanced
//! binary tree over the node sequence:
//!
//! * in-order node `j` holds array positions `[j·CAP, min((j+1)·CAP, n))`,
//!   so consecutive nodes cover consecutive key ranges;
//! * the tree over node ids `0..N` is the balanced median-split tree, built
//!   recursively into one pre-allocated arena.

use crate::node::{TTreeNode, NO_CHILD};
use ccindex_common::{ceil_div, AlignedBuf, Key};

/// Builder producing the arena and root for a [`crate::TTree`].
#[derive(Debug)]
pub struct TTreeBuilder;

/// Output of a build: arena, root id, height.
pub(crate) struct Built<K, const CAP: usize> {
    pub nodes: AlignedBuf<TTreeNode<K, CAP>>,
    pub root: u32,
    pub height: u32,
}

impl TTreeBuilder {
    /// Build the balanced node arena over `keys` (sorted, duplicates OK).
    pub(crate) fn build<K: Key, const CAP: usize>(keys: &[K]) -> Built<K, CAP> {
        assert!(CAP >= 1, "node capacity must be at least 1");
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        let n_nodes = ceil_div(keys.len(), CAP);
        assert!(
            (n_nodes as u64) < NO_CHILD as u64,
            "too many nodes for u32 ids"
        );
        let mut nodes: AlignedBuf<TTreeNode<K, CAP>> = AlignedBuf::new_zeroed(n_nodes);
        // Fill node contents in in-order sequence.
        for j in 0..n_nodes {
            let base = j * CAP;
            let end = (base + CAP).min(keys.len());
            let node = &mut nodes[j];
            node.left = NO_CHILD;
            node.right = NO_CHILD;
            node.count = (end - base) as u32;
            for (slot, pos) in (base..end).enumerate() {
                node.keys[slot] = keys[pos];
                node.rids[slot] = pos as u32;
            }
        }
        // Link a balanced tree over in-order ids [0, n_nodes).
        let root = Self::link(&mut nodes, 0, n_nodes);
        let height = if n_nodes == 0 {
            0
        } else {
            usize::BITS - n_nodes.leading_zeros()
        };
        Built {
            nodes,
            root,
            height,
        }
    }

    fn link<K: Key, const CAP: usize>(
        nodes: &mut AlignedBuf<TTreeNode<K, CAP>>,
        lo: usize,
        hi: usize,
    ) -> u32 {
        if lo >= hi {
            return NO_CHILD;
        }
        let mid = lo + ((hi - lo) >> 1);
        let left = Self::link(nodes, lo, mid);
        let right = Self::link(nodes, mid + 1, hi);
        nodes[mid].left = left;
        nodes[mid].right = right;
        mid as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_cover_contiguous_ranges() {
        let keys: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b = TTreeBuilder::build::<u32, 8>(&keys);
        assert_eq!(b.nodes.len(), 13); // ceil(100/8)
        for j in 0..13usize {
            let node = &b.nodes[j];
            let expect = if j < 12 { 8 } else { 4 };
            assert_eq!(node.count as usize, expect, "node {j}");
            for s in 0..node.count as usize {
                assert_eq!(node.rids[s] as usize, j * 8 + s);
                assert_eq!(node.keys[s], keys[j * 8 + s]);
            }
        }
    }

    #[test]
    fn tree_is_a_valid_bst_over_node_mins() {
        let keys: Vec<u32> = (0..10_000).collect();
        let b = TTreeBuilder::build::<u32, 16>(&keys);
        // In-order traversal from the root must yield node ids 0,1,2,...
        fn inorder<K: Key, const CAP: usize>(
            nodes: &AlignedBuf<TTreeNode<K, CAP>>,
            id: u32,
            out: &mut Vec<u32>,
        ) {
            if id == NO_CHILD {
                return;
            }
            inorder(nodes, nodes[id as usize].left, out);
            out.push(id);
            inorder(nodes, nodes[id as usize].right, out);
        }
        let mut seq = Vec::new();
        inorder(&b.nodes, b.root, &mut seq);
        let expected: Vec<u32> = (0..b.nodes.len() as u32).collect();
        assert_eq!(seq, expected);
    }

    #[test]
    fn height_is_logarithmic() {
        let keys: Vec<u32> = (0..16_384).collect();
        let b = TTreeBuilder::build::<u32, 16>(&keys); // 1024 nodes
        assert_eq!(b.height, 11); // ceil(log2(1024+1)) = 11 levels
    }

    #[test]
    fn empty_input() {
        let b = TTreeBuilder::build::<u32, 8>(&[]);
        assert_eq!(b.nodes.len(), 0);
        assert_eq!(b.root, NO_CHILD);
        assert_eq!(b.height, 0);
    }

    #[test]
    fn single_partial_node() {
        let b = TTreeBuilder::build::<u32, 8>(&[5, 6, 7]);
        assert_eq!(b.nodes.len(), 1);
        assert_eq!(b.root, 0);
        assert_eq!(b.nodes[0].count, 3);
    }
}
