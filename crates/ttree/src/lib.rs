//! T-tree index, the improved variant of Lehman & Carey (1986).
//!
//! A T-tree is a balanced binary tree whose nodes hold many adjacent key
//! values in sorted order (§3.3). The paper implements "the improved
//! version of T-Tree \[LC86b\] ... For each T-tree node, we store the two
//! child pointers adjacent to the smallest key so that they will be brought
//! together into cache in the same cache line (most of the time, the
//! improved version checks the smallest key only in each node)". We follow
//! both details: the search descends comparing only each node's *minimum*
//! key, and the node layout places `(left, right, min-key…)` at the front
//! of the node so one line fetch serves the descent decision.
//!
//! The paper's criticisms reproduced here: only one boundary key per node
//! participates in the descent, so cache-line utilisation is poor and the
//! number of comparisons stays ~log2 n; and each key slot is accompanied by
//! a record-pointer slot, so half of every node is RID storage (the 2× space
//! column of Fig. 7).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod node;
pub mod search;

pub use build::TTreeBuilder;
pub use node::{TTreeNode, NO_CHILD};
pub use search::TTree;
