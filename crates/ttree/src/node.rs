//! T-tree node layout.
//!
//! §6.2: "We avoid storing the parent pointer in each node of a T-tree
//! since it's not necessary for searching. ... For each T-tree node, we
//! store the two child pointers adjacent to the smallest key so that they
//! will be brought together into cache in the same cache line."
//!
//! `#[repr(C)]` pins that layout: the two 4-byte child links, the occupancy
//! count and the *first* (smallest) key all sit in the node's leading bytes,
//! so the descent — which per the improved algorithm of \[LC86b\] examines
//! only the smallest key — touches exactly one cache line per node. Each
//! key slot is paired with a 4-byte record-identifier slot, the space
//! overhead §3.3 criticises ("essentially half of the space in each node is
//! wasted").

use ccindex_common::Key;

/// Child link sentinel: no child.
pub const NO_CHILD: u32 = u32::MAX;

/// A T-tree node with `CAP` entry slots.
///
/// Keys in a node are adjacent values of the sorted array; `rids[i]` is the
/// array position of `keys[i]`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct TTreeNode<K, const CAP: usize> {
    /// Left child (node id) or [`NO_CHILD`].
    pub left: u32,
    /// Right child (node id) or [`NO_CHILD`].
    pub right: u32,
    /// Number of occupied entry slots (≤ `CAP`).
    pub count: u32,
    /// Keys, sorted ascending; `keys[0]` is the boundary key the improved
    /// descent examines, deliberately adjacent to the child links.
    pub keys: [K; CAP],
    /// Record identifiers (sorted-array positions), parallel to `keys`.
    pub rids: [u32; CAP],
}

impl<K: Key, const CAP: usize> Default for TTreeNode<K, CAP> {
    fn default() -> Self {
        Self {
            left: NO_CHILD,
            right: NO_CHILD,
            count: 0,
            keys: [K::default(); CAP],
            rids: [0; CAP],
        }
    }
}

impl<K: Key, const CAP: usize> TTreeNode<K, CAP> {
    /// Byte offset of `keys[0]` within the node; the descent's single line
    /// fetch covers `[0, header_bytes())`.
    pub fn header_bytes() -> usize {
        core::mem::offset_of!(Self, keys) + K::WIDTH
    }

    /// Smallest key in the node (`count` must be > 0).
    #[inline]
    pub fn min_key(&self) -> K {
        debug_assert!(self.count > 0);
        self.keys[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_and_min_key_share_leading_bytes() {
        // left(0) right(4) count(8) keys[0](12) for 4-byte keys: all
        // within the first 16 bytes — one cache line.
        assert_eq!(core::mem::offset_of!(TTreeNode<u32, 8>, left), 0);
        assert_eq!(core::mem::offset_of!(TTreeNode<u32, 8>, right), 4);
        assert_eq!(core::mem::offset_of!(TTreeNode<u32, 8>, count), 8);
        assert_eq!(core::mem::offset_of!(TTreeNode<u32, 8>, keys), 12);
        assert_eq!(TTreeNode::<u32, 8>::header_bytes(), 16);
    }

    #[test]
    fn node_size_scales_with_capacity() {
        // 12-byte header + CAP*(K + R) with u32 keys and rids.
        assert_eq!(core::mem::size_of::<TTreeNode<u32, 8>>(), 12 + 8 * 8);
        assert_eq!(core::mem::size_of::<TTreeNode<u32, 16>>(), 12 + 16 * 8);
    }

    #[test]
    fn default_node_is_leafless_and_empty() {
        let n = TTreeNode::<u32, 4>::default();
        assert_eq!(n.left, NO_CHILD);
        assert_eq!(n.right, NO_CHILD);
        assert_eq!(n.count, 0);
    }

    #[test]
    fn wide_keys_keep_layout() {
        // u64 keys: count padding pushes keys to offset 16.
        let off = core::mem::offset_of!(TTreeNode<u64, 8>, keys);
        assert_eq!(off, 16);
        assert_eq!(TTreeNode::<u64, 8>::header_bytes(), 24);
    }
}
