//! T-tree search: the improved \[LC86b\] descent.
//!
//! §3.3/§6.2: "most of the time, the improved version checks the smallest
//! key only in each node". The descent compares the probe against each
//! node's minimum key: smaller goes left; otherwise the node becomes the
//! *candidate* and the descent continues right. The candidate — the last
//! node whose minimum is ≤ the probe — is the only node whose full key
//! array is searched. This is exactly why the paper finds T-trees no better
//! than binary search on cache behaviour: the descent makes ~log₂(n/m)
//! one-line node touches *plus* log₂ m comparisons in the candidate, the
//! same ~log₂ n total comparisons, with only the candidate node's line
//! well utilised.

use crate::build::TTreeBuilder;
use crate::node::{TTreeNode, NO_CHILD};
use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SpaceReport,
};

/// A balanced, bulk-built T-tree with `CAP` entries per node.
#[derive(Debug, Clone)]
pub struct TTree<K: Key, const CAP: usize> {
    nodes: AlignedBuf<TTreeNode<K, CAP>>,
    root: u32,
    len: usize,
    height: u32,
}

impl<K: Key, const CAP: usize> TTree<K, CAP> {
    /// Build from a sorted slice.
    pub fn build(keys: &[K]) -> Self {
        let built = TTreeBuilder::build::<K, CAP>(keys);
        Self {
            nodes: built.nodes,
            root: built.root,
            len: keys.len(),
            height: built.height,
        }
    }

    /// Entries per node.
    pub const fn capacity() -> usize {
        CAP
    }

    /// Number of nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node_addr(&self, id: u32) -> usize {
        self.nodes.base_addr() + id as usize * core::mem::size_of::<TTreeNode<K, CAP>>()
    }

    /// Improved-T-tree descent: find the candidate node for `key`.
    /// Returns `NO_CHILD` when `key` is smaller than every key.
    #[inline]
    fn find_candidate<T: AccessTracer>(&self, key: K, tracer: &mut T) -> u32 {
        let mut cur = self.root;
        let mut candidate = NO_CHILD;
        while cur != NO_CHILD {
            let node = &self.nodes[cur as usize];
            // One line fetch: children + count + smallest key.
            tracer.read(self.node_addr(cur), TTreeNode::<K, CAP>::header_bytes());
            tracer.compare();
            if key < node.min_key() {
                cur = node.left;
            } else {
                candidate = cur;
                cur = node.right;
            }
            tracer.descend();
        }
        candidate
    }

    /// Leftmost slot `>= key` within node `j` (binary search, traced).
    #[inline]
    fn node_lower_bound<T: AccessTracer>(&self, j: usize, key: K, tracer: &mut T) -> usize {
        let node = &self.nodes[j];
        let count = node.count as usize;
        let keys_base = self.node_addr(j as u32) + core::mem::offset_of!(TTreeNode<K, CAP>, keys);
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = lo + ((hi - lo) >> 1);
            tracer.compare();
            tracer.read(keys_base + mid * K::WIDTH, K::WIDTH);
            if node.keys[mid] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Core lookup: `(node index, slot)` of the leftmost entry `>= key`.
    ///
    /// With duplicates, equal keys can span node boundaries (the paper
    /// sidesteps this by assuming distinct keys, §6.1 — "by assuming
    /// distinct key values we are slightly favoring binary search trees and
    /// T-trees"); we walk back through in-order predecessors (arena index
    /// == in-order index) until the run's left edge.
    fn locate<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let candidate = self.find_candidate(key, tracer);
        if candidate == NO_CHILD {
            return Some((0, 0)); // probe below the global minimum
        }
        let mut j = candidate as usize;
        let mut slot = self.node_lower_bound(j, key, tracer);
        while slot == 0 && j > 0 {
            let prev = &self.nodes[j - 1];
            let pcount = prev.count as usize;
            tracer.compare();
            tracer.read(
                self.node_addr((j - 1) as u32)
                    + core::mem::offset_of!(TTreeNode<K, CAP>, keys)
                    + (pcount - 1) * K::WIDTH,
                K::WIDTH,
            );
            if prev.keys[pcount - 1] >= key {
                j -= 1;
                slot = self.node_lower_bound(j, key, tracer);
            } else {
                break;
            }
        }
        Some((j, slot))
    }

    /// The *basic* \[LC86a\] descent, kept as an ablation target: every
    /// node checks **both** boundary keys (min and max) before deciding,
    /// so each visited node touches its first *and* last key slot — for
    /// multi-line nodes that is an extra line fetch per node, which is
    /// exactly why \[LC86b\]'s one-boundary improvement (and our default
    /// descent) exists.
    pub fn search_classic_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let mut cur = self.root;
        while cur != NO_CHILD {
            let node = &self.nodes[cur as usize];
            let count = node.count as usize;
            let keys_off = core::mem::offset_of!(TTreeNode<K, CAP>, keys);
            // Boundary checks: min ...
            tracer.read(self.node_addr(cur), TTreeNode::<K, CAP>::header_bytes());
            tracer.compare();
            if key < node.min_key() {
                cur = node.left;
                tracer.descend();
                continue;
            }
            // ... and max (tail of the key array: a different line for
            // large CAP).
            tracer.compare();
            tracer.read(
                self.node_addr(cur) + keys_off + (count - 1) * K::WIDTH,
                K::WIDTH,
            );
            if key > node.keys[count - 1] {
                cur = node.right;
                tracer.descend();
                continue;
            }
            // Bounding node found: search within (leftmost duplicates may
            // extend into predecessors; reuse the back-walk).
            let j = cur as usize;
            let mut slot = self.node_lower_bound(j, key, tracer);
            let mut j = j;
            while slot == 0 && j > 0 {
                let prev = &self.nodes[j - 1];
                let pcount = prev.count as usize;
                tracer.compare();
                if prev.keys[pcount - 1] >= key {
                    j -= 1;
                    slot = self.node_lower_bound(j, key, tracer);
                } else {
                    break;
                }
            }
            let node = &self.nodes[j];
            if slot < node.count as usize {
                tracer.compare();
                if node.keys[slot] == key {
                    return Some(node.rids[0] as usize + slot);
                }
            }
            return None;
        }
        None
    }

    /// Leftmost array position with key `>= key`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        match self.locate(key, tracer) {
            None => 0,
            Some((j, slot)) => {
                // rids are contiguous positions: rids[0] is the node base,
                // and slot == count addresses the successor node's start.
                self.nodes[j].rids[0] as usize + slot
            }
        }
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let (j, slot) = self.locate(key, tracer)?;
        let node = &self.nodes[j];
        if slot < node.count as usize {
            tracer.compare();
            if node.keys[slot] == key {
                return Some(node.rids[0] as usize + slot);
            }
        }
        None
    }
}

impl<K: Key, const CAP: usize> SearchIndex<K> for TTree<K, CAP> {
    fn name(&self) -> &'static str {
        "T-tree"
    }
    fn len(&self) -> usize {
        self.len
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        // Fig. 7: the RID slots inside the nodes are charged only in the
        // "direct" column; "indirect" assumes the RID list could have been
        // rearranged into the nodes.
        let arena = self.nodes.size_bytes();
        SpaceReport {
            indirect_bytes: arena.saturating_sub(self.len * 4),
            direct_bytes: arena,
        }
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.height,
            internal_nodes: self.nodes.len(),
            branching: 2,
            node_bytes: core::mem::size_of::<TTreeNode<K, CAP>>(),
        }
    }
}

impl<K: Key, const CAP: usize> OrderedIndex<K> for TTree<K, CAP> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..5000).map(|i| i * 3 + 1).collect();
        let t = TTree::<u32, 16>::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.search(k), Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_are_none() {
        let keys: Vec<u32> = (0..5000).map(|i| i * 3 + 1).collect();
        let t = TTree::<u32, 16>::build(&keys);
        assert_eq!(t.search(0), None);
        for i in (0..4999).step_by(11) {
            assert_eq!(t.search(i * 3 + 2), None);
        }
        assert_eq!(t.search(u32::MAX), None);
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let keys: Vec<u32> = vec![3, 3, 7, 7, 7, 10, 10, 21, 22, 23, 40, 41, 42, 50];
        let t = TTree::<u32, 4>::build(&keys);
        for probe in 0..=55u32 {
            assert_eq!(
                t.lower_bound(probe),
                keys.partition_point(|&k| k < probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn lower_bound_exhaustive_vs_reference_many_caps() {
        let keys: Vec<u32> = (0..257).map(|i| i * 2 + 10).collect();
        macro_rules! check {
            ($cap:literal) => {{
                let t = TTree::<u32, $cap>::build(&keys);
                for probe in 0..=(257 * 2 + 12) {
                    assert_eq!(
                        t.lower_bound(probe),
                        keys.partition_point(|&k| k < probe),
                        "cap {} probe {probe}",
                        $cap
                    );
                }
            }};
        }
        check!(1);
        check!(2);
        check!(5);
        check!(8);
        check!(16);
        check!(64);
        check!(300);
    }

    #[test]
    fn duplicates_return_leftmost() {
        let keys = vec![1u32, 4, 4, 4, 4, 4, 4, 4, 4, 4, 9, 12];
        let t = TTree::<u32, 4>::build(&keys);
        assert_eq!(t.search(4), Some(1));
    }

    #[test]
    fn descent_reads_one_header_per_level() {
        let keys: Vec<u32> = (0..100_000).collect();
        let t = TTree::<u32, 16>::build(&keys);
        let mut tracer = CountingTracer::new();
        t.search_with(54_321, &mut tracer);
        // 6250 nodes -> height 13; descent <= 13 header reads, plus
        // <= log2(16)+1 = 5 key reads in the candidate.
        assert!(tracer.reads <= 13 + 5 + 1, "reads = {}", tracer.reads);
        assert!(tracer.descends <= 13, "descends = {}", tracer.descends);
    }

    #[test]
    fn classic_search_agrees_with_improved() {
        let keys: Vec<u32> = (0..10_000).map(|i| (i / 3) * 7).collect();
        let t = TTree::<u32, 16>::build(&keys);
        for probe in (0..24_000u32).step_by(1) {
            let mut tr = ccindex_common::NoopTracer;
            assert_eq!(
                t.search_classic_with(probe, &mut tr),
                t.search(probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn classic_search_reads_more_bytes_than_improved() {
        // The [LC86b] improvement in numbers: the improved descent reads
        // only each node's header, the basic one also touches the far
        // boundary key.
        let keys: Vec<u32> = (0..1_000_000).collect();
        let t = TTree::<u32, 64>::build(&keys);
        let (mut classic, mut improved) = (0u64, 0u64);
        for probe in (0..1_000_000u32).step_by(10_007) {
            let mut a = CountingTracer::new();
            t.search_classic_with(probe, &mut a);
            classic += a.bytes_read;
            let mut b = CountingTracer::new();
            t.search_with(probe, &mut b);
            improved += b.bytes_read;
        }
        assert!(
            classic > improved,
            "classic {classic} vs improved {improved}"
        );
    }

    #[test]
    fn space_direct_exceeds_indirect_by_rid_bytes() {
        let keys: Vec<u32> = (0..10_000).collect();
        let t = TTree::<u32, 8>::build(&keys);
        let s = t.space();
        assert_eq!(s.direct_bytes - s.indirect_bytes, 10_000 * 4);
        // Arena should be about n/CAP nodes * node size.
        let expected = (10_000usize / 8) * core::mem::size_of::<TTreeNode<u32, 8>>();
        assert!(s.direct_bytes >= expected);
    }

    #[test]
    fn empty_and_tiny() {
        let t = TTree::<u32, 8>::build(&[]);
        assert_eq!(t.search(5), None);
        assert_eq!(t.lower_bound(5), 0);
        let t = TTree::<u32, 8>::build(&[7]);
        assert_eq!(t.search(7), Some(0));
        assert_eq!(t.search(6), None);
        assert_eq!(t.search(8), None);
        assert_eq!(t.lower_bound(8), 1);
    }
}
