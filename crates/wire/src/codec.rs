//! Byte-level codecs: primitives plus every `mmdb` type that crosses
//! the wire.
//!
//! Hand-rolled little-endian encoding in the same spirit as
//! `bench/report.rs`'s hand-rolled JSON — no third-party serializer,
//! every decode failure a typed [`MmdbError::Transport`] with
//! [`TransportFault::Decode`], never a panic. Strings are
//! length-prefixed UTF-8; sequences are length-prefixed; enums are
//! one-byte tags.

use ccindex_obs::SpanNode;
use mmdb::plan::{GroupStep, JoinStep, Plan, Probe, ProbeStep, Side};
use mmdb::{
    between, eq, on, Agg, AggFn, ExecOptions, GroupRow, IndexKind, JoinRow, MmdbError, Predicate,
    PredicateOp, Result, ResultRows, StorageFault, TransportFault, Value,
};

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte (also the enum-tag encoder).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `false` = 0, `true` = 1.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes (snapshot-page payloads).
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Option tag (0 = None, 1 = Some) followed by the value via `f`.
    pub fn option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
        }
    }

    /// Length-prefixed sequence, each element via `f`.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }
}

/// Cursor over a received payload. Every read checks bounds and
/// returns a typed decode error naming the peer on failure.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    endpoint: &'a str,
}

impl<'a> Reader<'a> {
    /// Start decoding `buf` received from `endpoint`.
    pub fn new(buf: &'a [u8], endpoint: &'a str) -> Self {
        Self {
            buf,
            pos: 0,
            endpoint,
        }
    }

    /// A typed decode error naming the peer; public so message-level
    /// decoders can reject bad tags with the same shape.
    pub fn fail(&self, detail: impl Into<String>) -> MmdbError {
        MmdbError::Transport {
            endpoint: self.endpoint.to_owned(),
            fault: TransportFault::Decode,
            detail: detail.into(),
            attempts: 0,
            elapsed_ms: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was consumed exactly.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.fail(format!("{} trailing bytes after message", self.remaining())));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.fail(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One raw byte (also the enum-tag decoder).
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// `usize` travels as u64.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.fail(format!("length {v} overflows usize")))
    }

    /// Strict 0/1 boolean.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.fail(format!("bad bool byte {other}"))),
        }
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| self.fail(format!("string is not UTF-8: {e}")))
    }

    /// Length-prefixed raw bytes (snapshot-page payloads).
    pub fn blob(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Option tag (0 = None, 1 = Some) followed by the value via `f`.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            other => Err(self.fail(format!("bad option tag {other}"))),
        }
    }

    /// Length-prefixed sequence, each element via `f`. Capacity is
    /// clamped by the bytes actually remaining, so a corrupted length
    /// cannot force a wild allocation.
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let len = self.u32()? as usize;
        let mut out = Vec::with_capacity(len.min(self.remaining()));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// mmdb type codecs
// ---------------------------------------------------------------------

/// Encode a [`Value`].
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Value::Str(s) => {
            w.u8(1);
            w.str(s);
        }
    }
}

/// Decode a [`Value`].
pub fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Str(r.str()?)),
        other => Err(r.fail(format!("bad Value tag {other}"))),
    }
}

/// Encode an [`IndexKind`] as its position in [`IndexKind::ALL`].
pub fn put_kind(w: &mut Writer, kind: IndexKind) {
    let tag = IndexKind::ALL
        .iter()
        .position(|k| *k == kind)
        .unwrap_or_default();
    w.u8(tag as u8);
}

/// Decode an [`IndexKind`].
pub fn get_kind(r: &mut Reader<'_>) -> Result<IndexKind> {
    let tag = r.u8()? as usize;
    IndexKind::ALL
        .get(tag)
        .copied()
        .ok_or_else(|| r.fail(format!("bad IndexKind tag {tag}")))
}

/// Encode an [`AggFn`].
pub fn put_agg_fn(w: &mut Writer, agg: AggFn) {
    w.u8(match agg {
        AggFn::Count => 0,
        AggFn::Sum => 1,
        AggFn::Min => 2,
        AggFn::Max => 3,
    });
}

/// Decode an [`AggFn`].
pub fn get_agg_fn(r: &mut Reader<'_>) -> Result<AggFn> {
    match r.u8()? {
        0 => Ok(AggFn::Count),
        1 => Ok(AggFn::Sum),
        2 => Ok(AggFn::Min),
        3 => Ok(AggFn::Max),
        other => Err(r.fail(format!("bad AggFn tag {other}"))),
    }
}

/// Encode an [`Agg`] (aggregate plus its measure column, if any).
pub fn put_agg(w: &mut Writer, agg: &Agg) {
    match agg {
        Agg::Count => w.u8(0),
        Agg::Sum(m) => {
            w.u8(1);
            w.str(m);
        }
        Agg::Min(m) => {
            w.u8(2);
            w.str(m);
        }
        Agg::Max(m) => {
            w.u8(3);
            w.str(m);
        }
    }
}

/// Decode an [`Agg`].
pub fn get_agg(r: &mut Reader<'_>) -> Result<Agg> {
    match r.u8()? {
        0 => Ok(Agg::Count),
        1 => Ok(Agg::Sum(r.str()?)),
        2 => Ok(Agg::Min(r.str()?)),
        3 => Ok(Agg::Max(r.str()?)),
        other => Err(r.fail(format!("bad Agg tag {other}"))),
    }
}

/// Encode a [`Side`].
pub fn put_side(w: &mut Writer, side: Side) {
    w.u8(match side {
        Side::Outer => 0,
        Side::Inner => 1,
    });
}

/// Decode a [`Side`].
pub fn get_side(r: &mut Reader<'_>) -> Result<Side> {
    match r.u8()? {
        0 => Ok(Side::Outer),
        1 => Ok(Side::Inner),
        other => Err(r.fail(format!("bad Side tag {other}"))),
    }
}

/// Encode a [`Probe`].
pub fn put_probe(w: &mut Writer, probe: &Probe) {
    match probe {
        Probe::Point(v) => {
            w.u8(0);
            put_value(w, v);
        }
        Probe::Range(lo, hi) => {
            w.u8(1);
            put_value(w, lo);
            put_value(w, hi);
        }
    }
}

/// Decode a [`Probe`].
pub fn get_probe(r: &mut Reader<'_>) -> Result<Probe> {
    match r.u8()? {
        0 => Ok(Probe::Point(get_value(r)?)),
        1 => Ok(Probe::Range(get_value(r)?, get_value(r)?)),
        other => Err(r.fail(format!("bad Probe tag {other}"))),
    }
}

/// Encode a [`Predicate`] through its public view.
pub fn put_predicate(w: &mut Writer, pred: &Predicate) {
    w.str(pred.column());
    match pred.op() {
        PredicateOp::Eq(v) => {
            w.u8(0);
            put_value(w, v);
        }
        PredicateOp::Between(lo, hi) => {
            w.u8(1);
            put_value(w, lo);
            put_value(w, hi);
        }
    }
}

/// Decode a [`Predicate`], reconstructing through [`eq`]/[`between`].
pub fn get_predicate(r: &mut Reader<'_>) -> Result<Predicate> {
    let column = r.str()?;
    match r.u8()? {
        0 => Ok(eq(&column, get_value(r)?)),
        1 => Ok(between(&column, get_value(r)?, get_value(r)?)),
        other => Err(r.fail(format!("bad Predicate tag {other}"))),
    }
}

/// Encode a [`JoinOn`](mmdb::JoinOn) condition.
pub fn put_join_on(w: &mut Writer, j: &mmdb::JoinOn) {
    w.str(j.outer());
    w.str(j.inner());
}

/// Decode a [`JoinOn`](mmdb::JoinOn), reconstructing through [`on`].
pub fn get_join_on(r: &mut Reader<'_>) -> Result<mmdb::JoinOn> {
    let outer = r.str()?;
    let inner = r.str()?;
    Ok(on(&outer, &inner))
}

/// Encode [`ExecOptions`].
pub fn put_exec(w: &mut Writer, exec: ExecOptions) {
    w.usize(exec.threads);
    w.usize(exec.lanes);
    w.usize(exec.shards);
}

/// Decode [`ExecOptions`].
pub fn get_exec(r: &mut Reader<'_>) -> Result<ExecOptions> {
    Ok(ExecOptions {
        threads: r.usize()?,
        lanes: r.usize()?,
        shards: r.usize()?,
    })
}

/// Encode a [`GroupRow`].
pub fn put_group_row(w: &mut Writer, g: &GroupRow) {
    put_value(w, &g.group);
    w.i64(g.value);
}

/// Decode a [`GroupRow`].
pub fn get_group_row(r: &mut Reader<'_>) -> Result<GroupRow> {
    Ok(GroupRow {
        group: get_value(r)?,
        value: r.i64()?,
    })
}

/// Encode [`ResultRows`].
pub fn put_result_rows(w: &mut Writer, rows: &ResultRows) {
    match rows {
        ResultRows::Rids(rids) => {
            w.u8(0);
            w.seq(rids, |w, r| w.u32(*r));
        }
        ResultRows::Joined(pairs) => {
            w.u8(1);
            w.seq(pairs, |w, p| {
                w.u32(p.outer_rid);
                w.u32(p.inner_rid);
            });
        }
        ResultRows::Groups(groups) => {
            w.u8(2);
            w.seq(groups, put_group_row);
        }
    }
}

/// Decode [`ResultRows`].
pub fn get_result_rows(r: &mut Reader<'_>) -> Result<ResultRows> {
    match r.u8()? {
        0 => Ok(ResultRows::Rids(r.seq(|r| r.u32())?)),
        1 => Ok(ResultRows::Joined(r.seq(|r| {
            Ok(JoinRow {
                outer_rid: r.u32()?,
                inner_rid: r.u32()?,
            })
        })?)),
        2 => Ok(ResultRows::Groups(r.seq(get_group_row)?)),
        other => Err(r.fail(format!("bad ResultRows tag {other}"))),
    }
}

/// Encode an [`MmdbError`] so a shard server can answer failures in
/// kind — the coordinator re-raises the same typed error it would have
/// seen in-process.
pub fn put_error(w: &mut Writer, e: &MmdbError) {
    match e {
        MmdbError::UnknownTable { table } => {
            w.u8(0);
            w.str(table);
        }
        MmdbError::DuplicateTable { table } => {
            w.u8(1);
            w.str(table);
        }
        MmdbError::UnknownColumn { table, column } => {
            w.u8(2);
            w.str(table);
            w.str(column);
        }
        MmdbError::NoIndex { table, column } => {
            w.u8(3);
            w.str(table);
            w.str(column);
        }
        MmdbError::IndexNotBuilt {
            table,
            column,
            kind,
        } => {
            w.u8(4);
            w.str(table);
            w.str(column);
            put_kind(w, *kind);
        }
        MmdbError::NoOrderedIndex { table, column } => {
            w.u8(5);
            w.str(table);
            w.str(column);
        }
        MmdbError::RaggedColumn {
            table,
            column,
            expected,
            got,
        } => {
            w.u8(6);
            w.str(table);
            w.str(column);
            w.usize(*expected);
            w.usize(*got);
        }
        MmdbError::NonIntegerMeasure { table, column } => {
            w.u8(7);
            w.str(table);
            w.str(column);
        }
        MmdbError::ShardKeyOutOfRange { key, shards } => {
            w.u8(8);
            w.str(key);
            w.usize(*shards);
        }
        MmdbError::InvalidPartitioner { reason } => {
            w.u8(9);
            w.str(reason);
        }
        MmdbError::InvalidExecOption { name, value } => {
            w.u8(10);
            w.str(name);
            w.str(value);
        }
        MmdbError::Unsupported { what } => {
            w.u8(11);
            w.str(what);
        }
        MmdbError::Transport {
            endpoint,
            fault,
            detail,
            attempts,
            elapsed_ms,
        } => {
            w.u8(12);
            w.str(endpoint);
            w.u8(match fault {
                TransportFault::Connect => 0,
                TransportFault::Io => 1,
                TransportFault::Decode => 2,
                TransportFault::Checksum => 3,
                TransportFault::Version => 4,
                TransportFault::Protocol => 5,
            });
            w.str(detail);
            w.u32(*attempts);
            w.u64(*elapsed_ms);
        }
        MmdbError::Storage {
            path,
            fault,
            detail,
        } => {
            w.u8(13);
            w.str(path);
            w.u8(match fault {
                StorageFault::Open => 0,
                StorageFault::Read => 1,
                StorageFault::Write => 2,
                StorageFault::Format => 3,
                StorageFault::Corrupt => 4,
                StorageFault::Version => 5,
            });
            w.str(detail);
        }
    }
}

/// Decode an [`MmdbError`].
pub fn get_error(r: &mut Reader<'_>) -> Result<MmdbError> {
    Ok(match r.u8()? {
        0 => MmdbError::UnknownTable { table: r.str()? },
        1 => MmdbError::DuplicateTable { table: r.str()? },
        2 => MmdbError::UnknownColumn {
            table: r.str()?,
            column: r.str()?,
        },
        3 => MmdbError::NoIndex {
            table: r.str()?,
            column: r.str()?,
        },
        4 => MmdbError::IndexNotBuilt {
            table: r.str()?,
            column: r.str()?,
            kind: get_kind(r)?,
        },
        5 => MmdbError::NoOrderedIndex {
            table: r.str()?,
            column: r.str()?,
        },
        6 => MmdbError::RaggedColumn {
            table: r.str()?,
            column: r.str()?,
            expected: r.usize()?,
            got: r.usize()?,
        },
        7 => MmdbError::NonIntegerMeasure {
            table: r.str()?,
            column: r.str()?,
        },
        8 => MmdbError::ShardKeyOutOfRange {
            key: r.str()?,
            shards: r.usize()?,
        },
        9 => MmdbError::InvalidPartitioner { reason: r.str()? },
        10 => MmdbError::InvalidExecOption {
            name: r.str()?,
            value: r.str()?,
        },
        11 => MmdbError::Unsupported { what: r.str()? },
        12 => MmdbError::Transport {
            endpoint: r.str()?,
            fault: match r.u8()? {
                0 => TransportFault::Connect,
                1 => TransportFault::Io,
                2 => TransportFault::Decode,
                3 => TransportFault::Checksum,
                4 => TransportFault::Version,
                5 => TransportFault::Protocol,
                other => return Err(r.fail(format!("bad TransportFault tag {other}"))),
            },
            detail: r.str()?,
            attempts: r.u32()?,
            elapsed_ms: r.u64()?,
        },
        13 => MmdbError::Storage {
            path: r.str()?,
            fault: match r.u8()? {
                0 => StorageFault::Open,
                1 => StorageFault::Read,
                2 => StorageFault::Write,
                3 => StorageFault::Format,
                4 => StorageFault::Corrupt,
                5 => StorageFault::Version,
                other => return Err(r.fail(format!("bad StorageFault tag {other}"))),
            },
            detail: r.str()?,
        },
        other => return Err(r.fail(format!("bad MmdbError tag {other}"))),
    })
}

/// Deepest [`SpanNode`] tree the decoder will accept — real traces are
/// a handful of levels; anything deeper is corrupted or hostile input.
const MAX_SPAN_DEPTH: u32 = 64;

/// Encode a [`SpanNode`] timing tree (the response half of a
/// propagated trace).
pub fn put_span_node(w: &mut Writer, node: &SpanNode) {
    w.str(&node.name);
    w.u64(node.elapsed_ns);
    w.seq(&node.children, put_span_node);
}

/// Decode a [`SpanNode`] timing tree, rejecting trees deeper than
/// `MAX_SPAN_DEPTH` (64 levels — real traces are a handful).
pub fn get_span_node(r: &mut Reader<'_>) -> Result<SpanNode> {
    get_span_node_at(r, 0)
}

fn get_span_node_at(r: &mut Reader<'_>, depth: u32) -> Result<SpanNode> {
    if depth >= MAX_SPAN_DEPTH {
        return Err(r.fail(format!("span tree deeper than {MAX_SPAN_DEPTH} levels")));
    }
    let name = r.str()?;
    let elapsed_ns = r.u64()?;
    let children = r.seq(|r| get_span_node_at(r, depth + 1))?;
    Ok(SpanNode {
        name,
        elapsed_ns,
        children,
    })
}

/// Encode a compiled [`Plan`] (all plan-node fields are public, so the
/// coordinator can reconstruct an identical template from a remote
/// shard's compile).
pub fn put_plan(w: &mut Writer, plan: &Plan) {
    w.str(&plan.table);
    w.seq(&plan.probes, |w, p| {
        w.str(&p.column);
        put_kind(w, p.kind);
        put_probe(w, &p.probe);
        w.usize(p.threads);
    });
    w.option(plan.join.as_ref(), |w, j| {
        w.str(&j.inner_table);
        w.str(&j.outer_column);
        w.str(&j.inner_column);
        put_kind(w, j.kind);
        w.usize(j.threads);
        w.usize(j.rows_hint);
    });
    w.option(plan.group.as_ref(), |w, g| {
        w.str(&g.column);
        put_side(w, g.side);
        put_agg_fn(w, g.agg);
        w.option(g.measure.as_ref(), |w, (m, side)| {
            w.str(m);
            put_side(w, *side);
        });
        w.usize(g.threads);
        w.usize(g.rows_hint);
    });
    put_exec(w, plan.exec);
}

/// Decode a compiled [`Plan`].
pub fn get_plan(r: &mut Reader<'_>) -> Result<Plan> {
    let table = r.str()?;
    let probes = r.seq(|r| {
        Ok(ProbeStep {
            column: r.str()?,
            kind: get_kind(r)?,
            probe: get_probe(r)?,
            threads: r.usize()?,
        })
    })?;
    let join = r.option(|r| {
        Ok(JoinStep {
            inner_table: r.str()?,
            outer_column: r.str()?,
            inner_column: r.str()?,
            kind: get_kind(r)?,
            threads: r.usize()?,
            rows_hint: r.usize()?,
        })
    })?;
    let group = r.option(|r| {
        Ok(GroupStep {
            column: r.str()?,
            side: get_side(r)?,
            agg: get_agg_fn(r)?,
            measure: r.option(|r| Ok((r.str()?, get_side(r)?)))?,
            threads: r.usize()?,
            rows_hint: r.usize()?,
        })
    })?;
    let exec = get_exec(r)?;
    Ok(Plan {
        table,
        probes,
        join,
        group,
        exec,
    })
}
