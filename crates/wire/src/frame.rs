//! Frame layer: magic, version, trace + payload length prefixes,
//! CRC-32 checksum.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+---------+-----------+---------+--------+---------+---------+
//! | CCWX | version | trace len | length  | crc32  | trace   | payload |
//! | 4 B  | u16 LE  | u32 LE    | u32 LE  | u32 LE | t bytes | l bytes |
//! +------+---------+-----------+---------+--------+---------+---------+
//! ```
//!
//! The **trace** field (protocol v2) is an optional out-of-band
//! context blob riding ahead of the message payload: a request carries
//! the client's span id, a response carries the server's encoded
//! timing breakdown (see `message.rs`). It is empty on untraced
//! conversations, costing four header bytes. The checksum covers
//! trace and payload together.
//!
//! The reader validates magic, version, length caps, and the checksum
//! before handing bytes to the codec — so a corrupted, truncated, or
//! foreign-protocol stream surfaces as a typed
//! [`MmdbError::Transport`], never a panic or a wild allocation.

use std::io::{Read, Write};

use mmdb::{MmdbError, Result, TransportFault};

/// Frame magic — identifies a ccindex wire peer.
pub const MAGIC: [u8; 4] = *b"CCWX";

/// Protocol version this build speaks (v2 added the trace field, v3
/// the snapshot-transfer messages). A peer speaking any other version
/// gets a typed [`TransportFault::Version`] naming both versions —
/// negotiation is explicit refusal, never a checksum coincidence.
pub const VERSION: u16 = 3;

/// Upper bound on one frame's trace + payload bytes (guards allocation
/// against a corrupted or hostile length field).
pub const MAX_FRAME_LEN: usize = 1 << 28; // 256 MiB

const HEADER_LEN: usize = 18;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the polynomial gzip and zlib use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn io_err(endpoint: &str, what: &str, e: &std::io::Error) -> MmdbError {
    MmdbError::Transport {
        endpoint: endpoint.to_owned(),
        fault: TransportFault::Io,
        detail: format!("{what}: {e}"),
        attempts: 0,
        elapsed_ms: 0,
    }
}

/// Write one untraced frame (header + empty trace + payload) and
/// flush it.
pub fn write_frame(w: &mut impl Write, endpoint: &str, payload: &[u8]) -> Result<()> {
    write_frame_traced(w, endpoint, &[], payload)
}

/// Write one frame carrying an out-of-band `trace` blob ahead of the
/// payload, and flush it. An empty `trace` is byte-identical to
/// [`write_frame`].
pub fn write_frame_traced(
    w: &mut impl Write,
    endpoint: &str,
    trace: &[u8],
    payload: &[u8],
) -> Result<()> {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in trace.iter().chain(payload) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..10].copy_from_slice(&(trace.len() as u32).to_le_bytes());
    header[10..14].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[14..18].copy_from_slice(&(!crc).to_le_bytes());
    w.write_all(&header)
        .map_err(|e| io_err(endpoint, "writing frame header", &e))?;
    w.write_all(trace)
        .map_err(|e| io_err(endpoint, "writing frame trace", &e))?;
    w.write_all(payload)
        .map_err(|e| io_err(endpoint, "writing frame payload", &e))?;
    w.flush()
        .map_err(|e| io_err(endpoint, "flushing frame", &e))
}

/// Read one frame, validating magic, version, lengths, and checksum;
/// discards any trace blob. Returns the payload bytes; every failure
/// is a typed [`MmdbError::Transport`] naming `endpoint`.
pub fn read_frame(r: &mut impl Read, endpoint: &str) -> Result<Vec<u8>> {
    read_frame_traced(r, endpoint).map(|(_, payload)| payload)
}

/// Read one frame, returning `(trace, payload)` — the trace is empty
/// on untraced conversations.
pub fn read_frame_traced(r: &mut impl Read, endpoint: &str) -> Result<(Vec<u8>, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_err(endpoint, "reading frame header", &e))?;
    if header[..4] != MAGIC {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Version,
            detail: format!(
                "bad magic {:02x}{:02x}{:02x}{:02x} (peer is not a ccindex shard server)",
                header[0], header[1], header[2], header[3]
            ),
            attempts: 0,
            elapsed_ms: 0,
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Version,
            detail: format!("peer speaks protocol v{version}, this build speaks v{VERSION}"),
            attempts: 0,
            elapsed_ms: 0,
        });
    }
    let trace_len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    let len = u32::from_le_bytes([header[10], header[11], header[12], header[13]]) as usize;
    if trace_len.saturating_add(len) > MAX_FRAME_LEN {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Decode,
            detail: format!("frame length {trace_len}+{len} exceeds the {MAX_FRAME_LEN}-byte cap"),
            attempts: 0,
            elapsed_ms: 0,
        });
    }
    let expected_crc = u32::from_le_bytes([header[14], header[15], header[16], header[17]]);
    let mut trace = vec![0u8; trace_len];
    r.read_exact(&mut trace)
        .map_err(|e| io_err(endpoint, "reading frame trace", &e))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_err(endpoint, "reading frame payload", &e))?;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in trace.iter().chain(&payload) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    let got_crc = !crc;
    if got_crc != expected_crc {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Checksum,
            detail: format!("frame crc {got_crc:08x}, header says {expected_crc:08x}"),
            attempts: 0,
            elapsed_ms: 0,
        });
    }
    Ok((trace, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        let mut cursor = &buf[..];
        let payload = read_frame(&mut cursor, "test").expect("roundtrip");
        assert_eq!(payload, b"hello shard");
    }

    #[test]
    fn traced_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, "test", b"span", b"hello shard").expect("vec write");
        let (trace, payload) = read_frame_traced(&mut &buf[..], "test").expect("roundtrip");
        assert_eq!(trace, b"span");
        assert_eq!(payload, b"hello shard");
        // The untraced reader accepts the frame and discards the trace.
        let payload = read_frame(&mut &buf[..], "test").expect("untraced read");
        assert_eq!(payload, b"hello shard");
    }

    #[test]
    fn corrupted_trace_is_a_checksum_error() {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, "test", b"span", b"hello shard").expect("vec write");
        buf[HEADER_LEN] ^= 0xFF; // first trace byte
        let err = read_frame_traced(&mut &buf[..], "test").expect_err("corruption must fail");
        assert!(matches!(
            err,
            MmdbError::Transport {
                fault: TransportFault::Checksum,
                ..
            }
        ));
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_frame(&mut &buf[..], "test").expect_err("corruption must fail");
        assert!(matches!(
            err,
            MmdbError::Transport {
                fault: TransportFault::Checksum,
                ..
            }
        ));
    }

    #[test]
    fn wrong_version_is_a_version_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"x").expect("vec write");
        buf[4] = 99;
        let err = read_frame(&mut &buf[..], "test").expect_err("version must fail");
        match err {
            MmdbError::Transport {
                fault: TransportFault::Version,
                detail,
                ..
            } => assert!(detail.contains("v99"), "{detail}"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn version_skew_names_both_versions_in_both_directions() {
        // An old (v2) peer talking to this build: rewrite the version
        // field to 2, exactly the bytes a v2 build emits.
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello").expect("vec write");
        buf[4..6].copy_from_slice(&2u16.to_le_bytes());
        // The CRC does not cover the header, so the failure must be the
        // *version* check, reached before any payload validation.
        match read_frame(&mut &buf[..], "test").expect_err("skew must fail") {
            MmdbError::Transport {
                fault: TransportFault::Version,
                detail,
                ..
            } => {
                assert!(detail.contains("v2"), "{detail}");
                assert!(detail.contains(&format!("v{VERSION}")), "{detail}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        // This build talking to an old peer: a v2 reader applies the
        // same `version != VERSION` check to our v3 header, so the
        // refusal is symmetric — modelled here by a future version
        // arriving at this build.
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello").expect("vec write");
        buf[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
        match read_frame(&mut &buf[..], "test").expect_err("skew must fail") {
            MmdbError::Transport {
                fault: TransportFault::Version,
                detail,
                ..
            } => assert!(
                detail.contains(&format!("v{}", VERSION + 1))
                    && detail.contains(&format!("v{VERSION}")),
                "{detail}"
            ),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        buf.truncate(buf.len() - 4);
        let err = read_frame(&mut &buf[..], "test").expect_err("truncation must fail");
        assert!(matches!(
            err,
            MmdbError::Transport {
                fault: TransportFault::Io,
                ..
            }
        ));
    }
}
