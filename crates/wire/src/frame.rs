//! Frame layer: magic, version, length prefix, CRC-32 checksum.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +------+---------+---------+--------+-----------------+
//! | CCWX | version | length  | crc32  | payload ...     |
//! | 4 B  | u16 LE  | u32 LE  | u32 LE | `length` bytes  |
//! +------+---------+---------+--------+-----------------+
//! ```
//!
//! The reader validates magic, version, a length cap, and the payload
//! checksum before handing bytes to the codec — so a corrupted,
//! truncated, or foreign-protocol stream surfaces as a typed
//! [`MmdbError::Transport`], never a panic or a wild allocation.

use std::io::{Read, Write};

use mmdb::{MmdbError, Result, TransportFault};

/// Frame magic — identifies a ccindex wire peer.
pub const MAGIC: [u8; 4] = *b"CCWX";

/// Protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Upper bound on one frame's payload (guards allocation against a
/// corrupted or hostile length field).
pub const MAX_FRAME_LEN: usize = 1 << 28; // 256 MiB

const HEADER_LEN: usize = 14;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the polynomial gzip and zlib use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn io_err(endpoint: &str, what: &str, e: &std::io::Error) -> MmdbError {
    MmdbError::Transport {
        endpoint: endpoint.to_owned(),
        fault: TransportFault::Io,
        detail: format!("{what}: {e}"),
    }
}

/// Write one frame (header + payload) and flush it.
pub fn write_frame(w: &mut impl Write, endpoint: &str, payload: &[u8]) -> Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[10..14].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)
        .map_err(|e| io_err(endpoint, "writing frame header", &e))?;
    w.write_all(payload)
        .map_err(|e| io_err(endpoint, "writing frame payload", &e))?;
    w.flush()
        .map_err(|e| io_err(endpoint, "flushing frame", &e))
}

/// Read one frame, validating magic, version, length, and checksum.
/// Returns the payload bytes; every failure is a typed
/// [`MmdbError::Transport`] naming `endpoint`.
pub fn read_frame(r: &mut impl Read, endpoint: &str) -> Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_err(endpoint, "reading frame header", &e))?;
    if header[..4] != MAGIC {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Version,
            detail: format!(
                "bad magic {:02x}{:02x}{:02x}{:02x} (peer is not a ccindex shard server)",
                header[0], header[1], header[2], header[3]
            ),
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Version,
            detail: format!("peer speaks protocol v{version}, this build speaks v{VERSION}"),
        });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Decode,
            detail: format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        });
    }
    let expected_crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_err(endpoint, "reading frame payload", &e))?;
    let got_crc = crc32(&payload);
    if got_crc != expected_crc {
        return Err(MmdbError::Transport {
            endpoint: endpoint.to_owned(),
            fault: TransportFault::Checksum,
            detail: format!("payload crc {got_crc:08x}, header says {expected_crc:08x}"),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        let mut cursor = &buf[..];
        let payload = read_frame(&mut cursor, "test").expect("roundtrip");
        assert_eq!(payload, b"hello shard");
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_frame(&mut &buf[..], "test").expect_err("corruption must fail");
        assert!(matches!(
            err,
            MmdbError::Transport {
                fault: TransportFault::Checksum,
                ..
            }
        ));
    }

    #[test]
    fn wrong_version_is_a_version_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"x").expect("vec write");
        buf[4] = 99;
        let err = read_frame(&mut &buf[..], "test").expect_err("version must fail");
        match err {
            MmdbError::Transport {
                fault: TransportFault::Version,
                detail,
                ..
            } => assert!(detail.contains("v99"), "{detail}"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "test", b"hello shard").expect("vec write");
        buf.truncate(buf.len() - 4);
        let err = read_frame(&mut &buf[..], "test").expect_err("truncation must fail");
        assert!(matches!(
            err,
            MmdbError::Transport {
                fault: TransportFault::Io,
                ..
            }
        ));
    }
}
