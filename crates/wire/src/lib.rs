//! # ccindex-wire — the shard wire protocol
//!
//! A dependency-free, versioned, length-prefixed, checksummed encoding
//! for everything that crosses the coordinator ↔ shard-server boundary:
//! query specs, probe batches, result rows, and shard admin — the
//! transport that lets `ShardedDatabase` run its shards as remote
//! `BatchServer`s behind plain blocking TCP (ROADMAP item 1; the
//! batch-formation window design of PR 5 is what makes `std::net`
//! sufficient — no async runtime).
//!
//! Three layers:
//!
//! * [`frame`] — magic + version + trace/payload lengths + CRC-32
//!   framing (the v2 trace field carries span ids and timing trees
//!   for cross-wire query tracing); corrupt,
//!   truncated, or foreign-protocol bytes surface as typed
//!   [`MmdbError::Transport`](mmdb::MmdbError) errors, never panics;
//! * [`codec`] — hand-rolled little-endian codecs for the `mmdb` types
//!   on the wire (in the same no-serializer spirit as `bench/report.rs`'s
//!   hand-rolled JSON);
//! * [`message`] — [`ShardRequest`]/[`ShardResponse`], the complete
//!   `ShardBackend` conversation.
//!
//! ```
//! use ccindex_wire::{ShardRequest, ShardResponse};
//! use mmdb::Value;
//!
//! let req = ShardRequest::PointProbeBatch {
//!     table: "sales".into(),
//!     column: "cust".into(),
//!     values: vec![Value::Int(7)],
//! };
//! let bytes = req.encode();
//! assert_eq!(ShardRequest::decode(&bytes, "peer")?, req);
//! # Ok::<(), mmdb::MmdbError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod frame;
pub mod message;

pub use frame::{
    crc32, read_frame, read_frame_traced, write_frame, write_frame_traced, MAGIC, MAX_FRAME_LEN,
    VERSION,
};
pub use message::{
    read_request, read_request_traced, read_response, read_response_traced, write_request,
    write_request_traced, write_response, write_response_traced, OneRequest, ShardRequest,
    ShardResponse, Spec,
};
