//! The shard protocol: every request a coordinator sends a shard
//! server, and every response that comes back. One frame carries one
//! message.
//!
//! [`Spec`] is the wire-level query description (the transport twin of
//! `ccindex-serve`'s `QuerySpec`); [`ShardRequest`] covers the full
//! `ShardBackend` surface — probe batches, probes-only selections,
//! join-probe fan-out, group-by partials, value fetches, plan
//! compilation, table admin — plus [`ShardRequest::ExecuteBatch`],
//! which fronts the remote `BatchServer` directly with a whole window
//! of requests.

use std::io::{Read, Write};

use ccindex_obs::SpanNode;
use mmdb::plan::{Plan, Probe};
use mmdb::{
    Agg, AggFn, ExecOptions, GroupRow, IndexKind, JoinOn, MmdbError, Predicate, Result, ResultRows,
    Value,
};

use crate::codec::{
    get_agg, get_agg_fn, get_error, get_exec, get_group_row, get_join_on, get_kind, get_plan,
    get_predicate, get_probe, get_result_rows, get_span_node, get_value, put_agg, put_agg_fn,
    put_error, put_exec, put_group_row, put_join_on, put_kind, put_plan, put_predicate, put_probe,
    put_result_rows, put_span_node, put_value, Reader, Writer,
};
use crate::frame::{read_frame, read_frame_traced, write_frame, write_frame_traced};

/// A query description in wire form: what `ccindex-serve`'s
/// `QuerySpec` captures, owned and encodable. A shard server replays
/// it through its local planner ([`ShardRequest::Compile`] /
/// [`ShardRequest::RunSpec`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// The driving table.
    pub table: String,
    /// WHERE conjuncts, in call order.
    pub filters: Vec<Predicate>,
    /// Optional join: inner table and the equi-join condition.
    pub join: Option<(String, JoinOn)>,
    /// Optional grouped aggregation: group column and aggregate.
    pub group: Option<(String, Agg)>,
    /// Optional forced index kind (`using`).
    pub forced_kind: Option<IndexKind>,
    /// Optional execution-option override for the compile.
    pub exec: Option<ExecOptions>,
}

/// One serving request in wire form — the transport twin of
/// `ccindex-serve::Request`, batched by
/// [`ShardRequest::ExecuteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum OneRequest {
    /// A single equality probe.
    Point {
        /// Table to probe.
        table: String,
        /// Column to probe.
        column: String,
        /// The probe value.
        value: Value,
    },
    /// A single inclusive range probe.
    Range {
        /// Table to probe.
        table: String,
        /// Column to probe.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// A full query pipeline.
    Query(Spec),
}

/// Everything a coordinator can ask a shard server.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// Handshake/health probe; answered with [`ShardResponse::Info`].
    Hello,
    /// Batched equality probes on one `table.column`.
    PointProbeBatch {
        /// Table to probe.
        table: String,
        /// Column to probe.
        column: String,
        /// One probe per value.
        values: Vec<Value>,
    },
    /// Batched inclusive range probes on one `table.column`.
    RangeProbeBatch {
        /// Table to probe.
        table: String,
        /// Column to probe.
        column: String,
        /// One probe per `(lo, hi)` pair.
        ranges: Vec<(Value, Value)>,
    },
    /// Execute a probes-only selection (the already-compiled probe
    /// steps of a scatter plan) and return matching local RIDs.
    Select {
        /// Table to select from.
        table: String,
        /// `(column, kind, probe)` steps, ANDed.
        probes: Vec<(String, IndexKind, Probe)>,
        /// Execution options for the partitioned operators.
        exec: ExecOptions,
    },
    /// Probe the `kind` index on `table.column` once per outer value;
    /// the inner half of a distributed indexed nested-loop join.
    JoinProbeBatch {
        /// Inner table.
        table: String,
        /// Inner join column.
        column: String,
        /// Index kind the plan resolved.
        kind: IndexKind,
        /// Outer-side join values, one probe each.
        values: Vec<Value>,
        /// Interleave lanes per batched descent.
        lanes: usize,
        /// Worker threads for the probe partitioning.
        threads: usize,
    },
    /// Grouped partial aggregate over this shard's rows.
    GroupPartial {
        /// Table holding the group (and measure) columns.
        table: String,
        /// Group-key column.
        group_column: String,
        /// Measure column (`None` for `Count`).
        measure: Option<String>,
        /// The aggregate function.
        agg: AggFn,
        /// Restrict to these local RIDs (`None` = all rows).
        rids: Option<Vec<u32>>,
    },
    /// Decode column values for the given local RIDs (`None` = all
    /// rows, in RID order).
    ColumnValues {
        /// Table holding the column.
        table: String,
        /// Column to decode.
        column: String,
        /// Local RIDs to decode (`None` = every row).
        rids: Option<Vec<u32>>,
    },
    /// Column names of a table, in declaration order.
    Columns {
        /// The table.
        table: String,
    },
    /// Row count of a table.
    Rows {
        /// The table.
        table: String,
    },
    /// Compile `spec` through the shard's planner and return the
    /// physical plan (the coordinator's scatter template).
    Compile {
        /// The query description.
        spec: Spec,
    },
    /// Compile and execute `spec`, returning the result rows.
    RunSpec {
        /// The query description.
        spec: Spec,
    },
    /// Run a whole window of serving requests through the shard's
    /// `BatchServer` — one result per request, in submission order.
    ExecuteBatch {
        /// The window's requests.
        requests: Vec<OneRequest>,
    },
    /// Register a table (name plus columns in declaration order).
    Register {
        /// Table name.
        table: String,
        /// `(column name, values)` in declaration order.
        columns: Vec<(String, Vec<Value>)>,
    },
    /// Drop a table and everything built on it.
    DropTable {
        /// The table.
        table: String,
    },
    /// Build an index.
    CreateIndex {
        /// Table holding the column.
        table: String,
        /// Column to index.
        column: String,
        /// Index kind to build.
        kind: IndexKind,
    },
    /// Drop an index.
    DropIndex {
        /// Table holding the column.
        table: String,
        /// The indexed column.
        column: String,
        /// Index kind to drop.
        kind: IndexKind,
    },
    /// Replace a column's values wholesale and rebuild its indexes.
    ReplaceColumn {
        /// Table holding the column.
        table: String,
        /// Column to replace.
        column: String,
        /// The new values (must match the table's row count).
        values: Vec<Value>,
    },
    /// Rebuild a column's RID list and indexes from current values.
    RebuildColumn {
        /// Table holding the column.
        table: String,
        /// Column to rebuild.
        column: String,
    },
    /// Install new execution options.
    SetExecOptions {
        /// The options to install.
        exec: ExecOptions,
    },
    /// Ask the server to finish in-flight work and exit its accept
    /// loop.
    Shutdown,
    /// Scrape the server's metric registry; answered with
    /// [`ShardResponse::Stats`].
    Stats,
    /// Fetch chunk `chunk` of the server's serialized catalog
    /// snapshot (protocol v3). The server pins its current generation,
    /// serializes it once, and streams it back one
    /// [`ShardResponse::SnapshotChunk`] per request — queries keep
    /// being served lock-free off the same pinned snapshot in between.
    FetchSnapshot {
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Deliver chunk `chunk` of a serialized catalog snapshot for the
    /// server to install (protocol v3). The final chunk
    /// (`chunk == total_chunks - 1`) triggers the install, committed
    /// through the server's normal generation cycle.
    InstallSnapshotChunk {
        /// Zero-based chunk index.
        chunk: u32,
        /// Total chunks in this transfer.
        total_chunks: u32,
        /// CRC-32 of this chunk's bytes (defense in depth on top of
        /// the frame checksum: the reassembled image spans frames).
        crc: u32,
        /// The chunk payload.
        bytes: Vec<u8>,
    },
}

/// Everything a shard server can answer.
#[derive(Debug, Clone)]
pub enum ShardResponse {
    /// One ascending RID set per probe, in submission order.
    RidSets(Vec<Vec<u32>>),
    /// One ascending RID set (probes-only selection).
    Rids(Vec<u32>),
    /// Decoded column values.
    Values(Vec<Value>),
    /// Grouped partial-aggregate rows, in group-value order.
    Groups(Vec<GroupRow>),
    /// Full query result rows.
    Rows(ResultRows),
    /// One result per request of an [`ShardRequest::ExecuteBatch`]
    /// window, in submission order.
    Batch(Vec<std::result::Result<ResultRows, MmdbError>>),
    /// A compiled physical plan.
    Plan(Plan),
    /// Column names.
    Names(Vec<String>),
    /// A scalar count.
    Count(u64),
    /// Index-rebuild timings (nanoseconds) from a replace/rebuild.
    Rebuilt {
        /// Time re-sorting the RID list, in nanoseconds.
        sort_ns: u64,
        /// Per-kind rebuild times, in nanoseconds.
        rebuilds: Vec<(IndexKind, u64)>,
    },
    /// Catalog generation info (the handshake answer).
    Info {
        /// Committed catalog generation.
        generation: u64,
        /// Generations committed so far.
        swaps: u64,
        /// Snapshots currently pinned.
        pinned: u64,
        /// The execution options in force.
        exec: ExecOptions,
    },
    /// Success with nothing to return.
    Unit,
    /// The server's metric registry, rendered as the same JSON shape
    /// `Registry::to_json` produces locally.
    Stats {
        /// The JSON dump.
        json: String,
    },
    /// The request failed; the same typed error the operation would
    /// have raised in-process.
    Err(MmdbError),
    /// One chunk of a serialized catalog snapshot (protocol v3),
    /// answering [`ShardRequest::FetchSnapshot`].
    SnapshotChunk {
        /// Zero-based chunk index (echoes the request).
        chunk: u32,
        /// Total chunks in the snapshot.
        total_chunks: u32,
        /// Total bytes of the whole serialized snapshot.
        total_len: u64,
        /// CRC-32 of this chunk's bytes.
        crc: u32,
        /// The chunk payload.
        bytes: Vec<u8>,
    },
}

impl PartialEq for ShardResponse {
    fn eq(&self, other: &Self) -> bool {
        use ShardResponse::*;
        match (self, other) {
            (RidSets(a), RidSets(b)) => a == b,
            (Rids(a), Rids(b)) => a == b,
            (Values(a), Values(b)) => a == b,
            (Groups(a), Groups(b)) => a == b,
            (Rows(a), Rows(b)) => a == b,
            (Batch(a), Batch(b)) => a == b,
            // `Plan` does not implement `PartialEq`; its debug form is
            // total over every field, so this is exact.
            (Plan(a), Plan(b)) => format!("{a:?}") == format!("{b:?}"),
            (Names(a), Names(b)) => a == b,
            (Count(a), Count(b)) => a == b,
            (
                Rebuilt {
                    sort_ns: a,
                    rebuilds: ar,
                },
                Rebuilt {
                    sort_ns: b,
                    rebuilds: br,
                },
            ) => a == b && ar == br,
            (
                Info {
                    generation: g1,
                    swaps: s1,
                    pinned: p1,
                    exec: e1,
                },
                Info {
                    generation: g2,
                    swaps: s2,
                    pinned: p2,
                    exec: e2,
                },
            ) => g1 == g2 && s1 == s2 && p1 == p2 && e1 == e2,
            (Unit, Unit) => true,
            (Stats { json: a }, Stats { json: b }) => a == b,
            (Err(a), Err(b)) => a == b,
            (
                SnapshotChunk {
                    chunk: c1,
                    total_chunks: t1,
                    total_len: l1,
                    crc: x1,
                    bytes: b1,
                },
                SnapshotChunk {
                    chunk: c2,
                    total_chunks: t2,
                    total_len: l2,
                    crc: x2,
                    bytes: b2,
                },
            ) => c1 == c2 && t1 == t2 && l1 == l2 && x1 == x2 && b1 == b2,
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------
// Spec / OneRequest codecs
// ---------------------------------------------------------------------

fn put_spec(w: &mut Writer, spec: &Spec) {
    w.str(&spec.table);
    w.seq(&spec.filters, put_predicate);
    w.option(spec.join.as_ref(), |w, (inner, cond)| {
        w.str(inner);
        put_join_on(w, cond);
    });
    w.option(spec.group.as_ref(), |w, (column, agg)| {
        w.str(column);
        put_agg(w, agg);
    });
    w.option(spec.forced_kind.as_ref(), |w, k| put_kind(w, *k));
    w.option(spec.exec.as_ref(), |w, e| put_exec(w, *e));
}

fn get_spec(r: &mut Reader<'_>) -> Result<Spec> {
    Ok(Spec {
        table: r.str()?,
        filters: r.seq(get_predicate)?,
        join: r.option(|r| Ok((r.str()?, get_join_on(r)?)))?,
        group: r.option(|r| Ok((r.str()?, get_agg(r)?)))?,
        forced_kind: r.option(get_kind)?,
        exec: r.option(get_exec)?,
    })
}

fn put_one_request(w: &mut Writer, req: &OneRequest) {
    match req {
        OneRequest::Point {
            table,
            column,
            value,
        } => {
            w.u8(0);
            w.str(table);
            w.str(column);
            put_value(w, value);
        }
        OneRequest::Range {
            table,
            column,
            lo,
            hi,
        } => {
            w.u8(1);
            w.str(table);
            w.str(column);
            put_value(w, lo);
            put_value(w, hi);
        }
        OneRequest::Query(spec) => {
            w.u8(2);
            put_spec(w, spec);
        }
    }
}

fn get_one_request(r: &mut Reader<'_>) -> Result<OneRequest> {
    Ok(match r.u8()? {
        0 => OneRequest::Point {
            table: r.str()?,
            column: r.str()?,
            value: get_value(r)?,
        },
        1 => OneRequest::Range {
            table: r.str()?,
            column: r.str()?,
            lo: get_value(r)?,
            hi: get_value(r)?,
        },
        2 => OneRequest::Query(get_spec(r)?),
        other => return Err(r.fail(format!("bad OneRequest tag {other}"))),
    })
}

fn put_opt_rids(w: &mut Writer, rids: Option<&Vec<u32>>) {
    w.option(rids, |w, rids| w.seq(rids, |w, r| w.u32(*r)));
}

fn get_opt_rids(r: &mut Reader<'_>) -> Result<Option<Vec<u32>>> {
    r.option(|r| r.seq(|r| r.u32()))
}

// ---------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------

impl ShardRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ShardRequest::Hello => w.u8(0),
            ShardRequest::PointProbeBatch {
                table,
                column,
                values,
            } => {
                w.u8(1);
                w.str(table);
                w.str(column);
                w.seq(values, put_value);
            }
            ShardRequest::RangeProbeBatch {
                table,
                column,
                ranges,
            } => {
                w.u8(2);
                w.str(table);
                w.str(column);
                w.seq(ranges, |w, (lo, hi)| {
                    put_value(w, lo);
                    put_value(w, hi);
                });
            }
            ShardRequest::Select {
                table,
                probes,
                exec,
            } => {
                w.u8(3);
                w.str(table);
                w.seq(probes, |w, (column, kind, probe)| {
                    w.str(column);
                    put_kind(w, *kind);
                    put_probe(w, probe);
                });
                put_exec(&mut w, *exec);
            }
            ShardRequest::JoinProbeBatch {
                table,
                column,
                kind,
                values,
                lanes,
                threads,
            } => {
                w.u8(4);
                w.str(table);
                w.str(column);
                put_kind(&mut w, *kind);
                w.seq(values, put_value);
                w.usize(*lanes);
                w.usize(*threads);
            }
            ShardRequest::GroupPartial {
                table,
                group_column,
                measure,
                agg,
                rids,
            } => {
                w.u8(5);
                w.str(table);
                w.str(group_column);
                w.option(measure.as_ref(), |w, m| w.str(m));
                put_agg_fn(&mut w, *agg);
                put_opt_rids(&mut w, rids.as_ref());
            }
            ShardRequest::ColumnValues {
                table,
                column,
                rids,
            } => {
                w.u8(6);
                w.str(table);
                w.str(column);
                put_opt_rids(&mut w, rids.as_ref());
            }
            ShardRequest::Columns { table } => {
                w.u8(7);
                w.str(table);
            }
            ShardRequest::Rows { table } => {
                w.u8(8);
                w.str(table);
            }
            ShardRequest::Compile { spec } => {
                w.u8(9);
                put_spec(&mut w, spec);
            }
            ShardRequest::RunSpec { spec } => {
                w.u8(10);
                put_spec(&mut w, spec);
            }
            ShardRequest::ExecuteBatch { requests } => {
                w.u8(11);
                w.seq(requests, put_one_request);
            }
            ShardRequest::Register { table, columns } => {
                w.u8(12);
                w.str(table);
                w.seq(columns, |w, (name, values)| {
                    w.str(name);
                    w.seq(values, put_value);
                });
            }
            ShardRequest::DropTable { table } => {
                w.u8(13);
                w.str(table);
            }
            ShardRequest::CreateIndex {
                table,
                column,
                kind,
            } => {
                w.u8(14);
                w.str(table);
                w.str(column);
                put_kind(&mut w, *kind);
            }
            ShardRequest::DropIndex {
                table,
                column,
                kind,
            } => {
                w.u8(15);
                w.str(table);
                w.str(column);
                put_kind(&mut w, *kind);
            }
            ShardRequest::ReplaceColumn {
                table,
                column,
                values,
            } => {
                w.u8(16);
                w.str(table);
                w.str(column);
                w.seq(values, put_value);
            }
            ShardRequest::RebuildColumn { table, column } => {
                w.u8(17);
                w.str(table);
                w.str(column);
            }
            ShardRequest::SetExecOptions { exec } => {
                w.u8(18);
                put_exec(&mut w, *exec);
            }
            ShardRequest::Shutdown => w.u8(19),
            ShardRequest::Stats => w.u8(20),
            ShardRequest::FetchSnapshot { chunk } => {
                w.u8(21);
                w.u32(*chunk);
            }
            ShardRequest::InstallSnapshotChunk {
                chunk,
                total_chunks,
                crc,
                bytes,
            } => {
                w.u8(22);
                w.u32(*chunk);
                w.u32(*total_chunks);
                w.u32(*crc);
                w.blob(bytes);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload received from `endpoint`.
    pub fn decode(bytes: &[u8], endpoint: &str) -> Result<Self> {
        let mut r = Reader::new(bytes, endpoint);
        let req = match r.u8()? {
            0 => ShardRequest::Hello,
            1 => ShardRequest::PointProbeBatch {
                table: r.str()?,
                column: r.str()?,
                values: r.seq(get_value)?,
            },
            2 => ShardRequest::RangeProbeBatch {
                table: r.str()?,
                column: r.str()?,
                ranges: r.seq(|r| Ok((get_value(r)?, get_value(r)?)))?,
            },
            3 => ShardRequest::Select {
                table: r.str()?,
                probes: r.seq(|r| Ok((r.str()?, get_kind(r)?, get_probe(r)?)))?,
                exec: get_exec(&mut r)?,
            },
            4 => ShardRequest::JoinProbeBatch {
                table: r.str()?,
                column: r.str()?,
                kind: get_kind(&mut r)?,
                values: r.seq(get_value)?,
                lanes: r.usize()?,
                threads: r.usize()?,
            },
            5 => ShardRequest::GroupPartial {
                table: r.str()?,
                group_column: r.str()?,
                measure: r.option(|r| r.str())?,
                agg: get_agg_fn(&mut r)?,
                rids: get_opt_rids(&mut r)?,
            },
            6 => ShardRequest::ColumnValues {
                table: r.str()?,
                column: r.str()?,
                rids: get_opt_rids(&mut r)?,
            },
            7 => ShardRequest::Columns { table: r.str()? },
            8 => ShardRequest::Rows { table: r.str()? },
            9 => ShardRequest::Compile {
                spec: get_spec(&mut r)?,
            },
            10 => ShardRequest::RunSpec {
                spec: get_spec(&mut r)?,
            },
            11 => ShardRequest::ExecuteBatch {
                requests: r.seq(get_one_request)?,
            },
            12 => ShardRequest::Register {
                table: r.str()?,
                columns: r.seq(|r| Ok((r.str()?, r.seq(get_value)?)))?,
            },
            13 => ShardRequest::DropTable { table: r.str()? },
            14 => ShardRequest::CreateIndex {
                table: r.str()?,
                column: r.str()?,
                kind: get_kind(&mut r)?,
            },
            15 => ShardRequest::DropIndex {
                table: r.str()?,
                column: r.str()?,
                kind: get_kind(&mut r)?,
            },
            16 => ShardRequest::ReplaceColumn {
                table: r.str()?,
                column: r.str()?,
                values: r.seq(get_value)?,
            },
            17 => ShardRequest::RebuildColumn {
                table: r.str()?,
                column: r.str()?,
            },
            18 => ShardRequest::SetExecOptions {
                exec: get_exec(&mut r)?,
            },
            19 => ShardRequest::Shutdown,
            20 => ShardRequest::Stats,
            21 => ShardRequest::FetchSnapshot { chunk: r.u32()? },
            22 => ShardRequest::InstallSnapshotChunk {
                chunk: r.u32()?,
                total_chunks: r.u32()?,
                crc: r.u32()?,
                bytes: r.blob()?,
            },
            other => return Err(r.fail(format!("bad ShardRequest tag {other}"))),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl ShardResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ShardResponse::RidSets(sets) => {
                w.u8(0);
                w.seq(sets, |w, rids| w.seq(rids, |w, r| w.u32(*r)));
            }
            ShardResponse::Rids(rids) => {
                w.u8(1);
                w.seq(rids, |w, r| w.u32(*r));
            }
            ShardResponse::Values(values) => {
                w.u8(2);
                w.seq(values, put_value);
            }
            ShardResponse::Groups(groups) => {
                w.u8(3);
                w.seq(groups, put_group_row);
            }
            ShardResponse::Rows(rows) => {
                w.u8(4);
                put_result_rows(&mut w, rows);
            }
            ShardResponse::Batch(results) => {
                w.u8(5);
                w.seq(results, |w, res| match res {
                    Ok(rows) => {
                        w.u8(0);
                        put_result_rows(w, rows);
                    }
                    Err(e) => {
                        w.u8(1);
                        put_error(w, e);
                    }
                });
            }
            ShardResponse::Plan(plan) => {
                w.u8(6);
                put_plan(&mut w, plan);
            }
            ShardResponse::Names(names) => {
                w.u8(7);
                w.seq(names, |w, n| w.str(n));
            }
            ShardResponse::Count(n) => {
                w.u8(8);
                w.u64(*n);
            }
            ShardResponse::Rebuilt { sort_ns, rebuilds } => {
                w.u8(9);
                w.u64(*sort_ns);
                w.seq(rebuilds, |w, (kind, ns)| {
                    put_kind(w, *kind);
                    w.u64(*ns);
                });
            }
            ShardResponse::Info {
                generation,
                swaps,
                pinned,
                exec,
            } => {
                w.u8(10);
                w.u64(*generation);
                w.u64(*swaps);
                w.u64(*pinned);
                put_exec(&mut w, *exec);
            }
            ShardResponse::Unit => w.u8(11),
            ShardResponse::Err(e) => {
                w.u8(12);
                put_error(&mut w, e);
            }
            ShardResponse::Stats { json } => {
                w.u8(13);
                w.str(json);
            }
            ShardResponse::SnapshotChunk {
                chunk,
                total_chunks,
                total_len,
                crc,
                bytes,
            } => {
                w.u8(14);
                w.u32(*chunk);
                w.u32(*total_chunks);
                w.u64(*total_len);
                w.u32(*crc);
                w.blob(bytes);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload received from `endpoint`.
    pub fn decode(bytes: &[u8], endpoint: &str) -> Result<Self> {
        let mut r = Reader::new(bytes, endpoint);
        let resp = match r.u8()? {
            0 => ShardResponse::RidSets(r.seq(|r| r.seq(|r| r.u32()))?),
            1 => ShardResponse::Rids(r.seq(|r| r.u32())?),
            2 => ShardResponse::Values(r.seq(get_value)?),
            3 => ShardResponse::Groups(r.seq(get_group_row)?),
            4 => ShardResponse::Rows(get_result_rows(&mut r)?),
            5 => ShardResponse::Batch(r.seq(|r| {
                Ok(match r.u8()? {
                    0 => Ok(get_result_rows(r)?),
                    1 => Err(get_error(r)?),
                    other => return Err(r.fail(format!("bad result tag {other}"))),
                })
            })?),
            6 => ShardResponse::Plan(get_plan(&mut r)?),
            7 => ShardResponse::Names(r.seq(|r| r.str())?),
            8 => ShardResponse::Count(r.u64()?),
            9 => ShardResponse::Rebuilt {
                sort_ns: r.u64()?,
                rebuilds: r.seq(|r| Ok((get_kind(r)?, r.u64()?)))?,
            },
            10 => ShardResponse::Info {
                generation: r.u64()?,
                swaps: r.u64()?,
                pinned: r.u64()?,
                exec: get_exec(&mut r)?,
            },
            11 => ShardResponse::Unit,
            12 => ShardResponse::Err(get_error(&mut r)?),
            13 => ShardResponse::Stats { json: r.str()? },
            14 => ShardResponse::SnapshotChunk {
                chunk: r.u32()?,
                total_chunks: r.u32()?,
                total_len: r.u64()?,
                crc: r.u32()?,
                bytes: r.blob()?,
            },
            other => return Err(r.fail(format!("bad ShardResponse tag {other}"))),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framed stream helpers
// ---------------------------------------------------------------------

/// Frame and send one request.
pub fn write_request(w: &mut impl Write, endpoint: &str, req: &ShardRequest) -> Result<()> {
    write_frame(w, endpoint, &req.encode())
}

/// Receive and decode one request.
pub fn read_request(r: &mut impl Read, endpoint: &str) -> Result<ShardRequest> {
    let payload = read_frame(r, endpoint)?;
    ShardRequest::decode(&payload, endpoint)
}

/// Frame and send one response.
pub fn write_response(w: &mut impl Write, endpoint: &str, resp: &ShardResponse) -> Result<()> {
    write_frame(w, endpoint, &resp.encode())
}

/// Receive and decode one response.
pub fn read_response(r: &mut impl Read, endpoint: &str) -> Result<ShardResponse> {
    let payload = read_frame(r, endpoint)?;
    ShardResponse::decode(&payload, endpoint)
}

// ---------------------------------------------------------------------
// Traced stream helpers (protocol v2 trace field)
// ---------------------------------------------------------------------

/// Frame and send one request, stamping the client's `span_id` into
/// the trace field. `span_id` 0 means "no trace requested" and sends
/// an empty trace — byte-identical to [`write_request`].
pub fn write_request_traced(
    w: &mut impl Write,
    endpoint: &str,
    req: &ShardRequest,
    span_id: u64,
) -> Result<()> {
    if span_id == 0 {
        return write_request(w, endpoint, req);
    }
    write_frame_traced(w, endpoint, &span_id.to_le_bytes(), &req.encode())
}

/// Receive and decode one request plus the client's span id (0 when
/// the request carried no trace).
pub fn read_request_traced(r: &mut impl Read, endpoint: &str) -> Result<(ShardRequest, u64)> {
    let (trace, payload) = read_frame_traced(r, endpoint)?;
    let span_id = match trace.len() {
        0 => 0,
        8 => u64::from_le_bytes(trace[..8].try_into().expect("length checked")),
        n => {
            return Err(MmdbError::Transport {
                endpoint: endpoint.to_owned(),
                fault: mmdb::TransportFault::Decode,
                detail: format!("request trace is {n} bytes, expected 0 or 8 (a span id)"),
                attempts: 0,
                elapsed_ms: 0,
            })
        }
    };
    Ok((ShardRequest::decode(&payload, endpoint)?, span_id))
}

/// Frame and send one response, attaching the server-side timing
/// breakdown when the request carried a trace.
pub fn write_response_traced(
    w: &mut impl Write,
    endpoint: &str,
    resp: &ShardResponse,
    trace: Option<&SpanNode>,
) -> Result<()> {
    match trace {
        None => write_response(w, endpoint, resp),
        Some(node) => {
            let mut tw = Writer::new();
            put_span_node(&mut tw, node);
            write_frame_traced(w, endpoint, &tw.into_bytes(), &resp.encode())
        }
    }
}

/// Receive and decode one response plus the server's timing breakdown
/// (`None` when the response carried no trace).
pub fn read_response_traced(
    r: &mut impl Read,
    endpoint: &str,
) -> Result<(ShardResponse, Option<SpanNode>)> {
    let (trace, payload) = read_frame_traced(r, endpoint)?;
    let node = if trace.is_empty() {
        None
    } else {
        let mut tr = Reader::new(&trace, endpoint);
        let node = get_span_node(&mut tr)?;
        tr.expect_end()?;
        Some(node)
    };
    Ok((ShardResponse::decode(&payload, endpoint)?, node))
}
