//! Wire-format property tests: encode→decode identity for every
//! message type, and corrupted / truncated / wrong-version frames
//! decode to typed errors — never panics.

use ccindex_obs::SpanNode;
use ccindex_wire::{
    read_frame, read_request_traced, read_response_traced, write_frame, write_request_traced,
    write_response_traced, OneRequest, ShardRequest, ShardResponse, Spec, VERSION,
};
use mmdb::plan::{GroupStep, JoinStep, Plan, Probe, ProbeStep, Side};
use mmdb::{
    between, count, eq, max, on, sum, Agg, AggFn, ExecOptions, GroupRow, IndexKind, JoinRow,
    MmdbError, ResultRows, StorageFault, TransportFault, Value,
};
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so one proptest-drawn
/// seed fans out into arbitrarily many field choices.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn string(&mut self) -> String {
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| char::from(b'a' + self.below(26) as u8))
            .collect()
    }

    fn value(&mut self) -> Value {
        if self.below(2) == 0 {
            Value::Int(self.next() as i64)
        } else {
            Value::Str(self.string())
        }
    }

    fn values(&mut self) -> Vec<Value> {
        let len = self.below(8) as usize;
        (0..len).map(|_| self.value()).collect()
    }

    fn rids(&mut self) -> Vec<u32> {
        let len = self.below(16) as usize;
        (0..len).map(|_| self.next() as u32).collect()
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn kind(&mut self) -> IndexKind {
        IndexKind::ALL[self.below(8) as usize]
    }

    fn exec(&mut self) -> ExecOptions {
        ExecOptions {
            threads: self.below(16) as usize,
            lanes: 1 + self.below(8) as usize,
            shards: 1 + self.below(8) as usize,
        }
    }

    fn probe(&mut self) -> Probe {
        if self.below(2) == 0 {
            Probe::Point(self.value())
        } else {
            Probe::Range(self.value(), self.value())
        }
    }

    fn agg(&mut self) -> Agg {
        match self.below(4) {
            0 => count(),
            1 => sum(&self.string()),
            2 => mmdb::min(&self.string()),
            _ => max(&self.string()),
        }
    }

    fn agg_fn(&mut self) -> AggFn {
        [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max][self.below(4) as usize]
    }

    fn side(&mut self) -> Side {
        if self.below(2) == 0 {
            Side::Outer
        } else {
            Side::Inner
        }
    }

    fn spec(&mut self) -> Spec {
        let filters = (0..self.below(3))
            .map(|_| {
                if self.below(2) == 0 {
                    eq(&self.string(), self.value())
                } else {
                    between(&self.string(), self.value(), self.value())
                }
            })
            .collect();
        Spec {
            table: self.string(),
            filters,
            join: if self.below(2) == 0 {
                Some((self.string(), on(&self.string(), &self.string())))
            } else {
                None
            },
            group: if self.below(2) == 0 {
                Some((self.string(), self.agg()))
            } else {
                None
            },
            forced_kind: if self.below(2) == 0 {
                Some(self.kind())
            } else {
                None
            },
            exec: if self.below(2) == 0 {
                Some(self.exec())
            } else {
                None
            },
        }
    }

    fn opt_rids(&mut self) -> Option<Vec<u32>> {
        if self.below(2) == 0 {
            Some(self.rids())
        } else {
            None
        }
    }

    fn one_request(&mut self) -> OneRequest {
        match self.below(3) {
            0 => OneRequest::Point {
                table: self.string(),
                column: self.string(),
                value: self.value(),
            },
            1 => OneRequest::Range {
                table: self.string(),
                column: self.string(),
                lo: self.value(),
                hi: self.value(),
            },
            _ => OneRequest::Query(self.spec()),
        }
    }

    fn error(&mut self) -> MmdbError {
        match self.below(14) {
            0 => MmdbError::UnknownTable {
                table: self.string(),
            },
            1 => MmdbError::DuplicateTable {
                table: self.string(),
            },
            2 => MmdbError::UnknownColumn {
                table: self.string(),
                column: self.string(),
            },
            3 => MmdbError::NoIndex {
                table: self.string(),
                column: self.string(),
            },
            4 => MmdbError::IndexNotBuilt {
                table: self.string(),
                column: self.string(),
                kind: self.kind(),
            },
            5 => MmdbError::NoOrderedIndex {
                table: self.string(),
                column: self.string(),
            },
            6 => MmdbError::RaggedColumn {
                table: self.string(),
                column: self.string(),
                expected: self.below(100) as usize,
                got: self.below(100) as usize,
            },
            7 => MmdbError::NonIntegerMeasure {
                table: self.string(),
                column: self.string(),
            },
            8 => MmdbError::ShardKeyOutOfRange {
                key: self.string(),
                shards: self.below(16) as usize,
            },
            9 => MmdbError::InvalidPartitioner {
                reason: self.string(),
            },
            10 => MmdbError::InvalidExecOption {
                name: self.string(),
                value: self.string(),
            },
            11 => MmdbError::Unsupported {
                what: self.string(),
            },
            12 => MmdbError::Transport {
                endpoint: self.string(),
                fault: [
                    TransportFault::Connect,
                    TransportFault::Io,
                    TransportFault::Decode,
                    TransportFault::Checksum,
                    TransportFault::Version,
                    TransportFault::Protocol,
                ][self.below(6) as usize],
                detail: self.string(),
                attempts: self.next() as u32,
                elapsed_ms: self.next(),
            },
            _ => MmdbError::Storage {
                path: self.string(),
                fault: [
                    StorageFault::Open,
                    StorageFault::Read,
                    StorageFault::Write,
                    StorageFault::Format,
                    StorageFault::Corrupt,
                    StorageFault::Version,
                ][self.below(6) as usize],
                detail: self.string(),
            },
        }
    }

    fn result_rows(&mut self) -> ResultRows {
        match self.below(3) {
            0 => ResultRows::Rids(self.rids()),
            1 => ResultRows::Joined(
                (0..self.below(8))
                    .map(|_| JoinRow {
                        outer_rid: self.next() as u32,
                        inner_rid: self.next() as u32,
                    })
                    .collect(),
            ),
            _ => ResultRows::Groups(
                (0..self.below(8))
                    .map(|_| GroupRow {
                        group: self.value(),
                        value: self.next() as i64,
                    })
                    .collect(),
            ),
        }
    }

    fn plan(&mut self) -> Plan {
        Plan {
            table: self.string(),
            probes: (0..self.below(3))
                .map(|_| ProbeStep {
                    column: self.string(),
                    kind: self.kind(),
                    probe: self.probe(),
                    threads: 1 + self.below(8) as usize,
                })
                .collect(),
            join: if self.below(2) == 0 {
                Some(JoinStep {
                    inner_table: self.string(),
                    outer_column: self.string(),
                    inner_column: self.string(),
                    kind: self.kind(),
                    threads: 1 + self.below(8) as usize,
                    rows_hint: self.below(1 << 20) as usize,
                })
            } else {
                None
            },
            group: if self.below(2) == 0 {
                Some(GroupStep {
                    column: self.string(),
                    side: self.side(),
                    agg: self.agg_fn(),
                    measure: if self.below(2) == 0 {
                        Some((self.string(), self.side()))
                    } else {
                        None
                    },
                    threads: 1 + self.below(8) as usize,
                    rows_hint: self.below(1 << 20) as usize,
                })
            } else {
                None
            },
            exec: self.exec(),
        }
    }

    /// A random timing tree, at most `depth` levels deep.
    fn span_node(&mut self, depth: u64) -> SpanNode {
        let children = if depth == 0 {
            Vec::new()
        } else {
            (0..self.below(3))
                .map(|_| self.span_node(depth - 1))
                .collect()
        };
        SpanNode {
            name: self.string(),
            elapsed_ns: self.next(),
            children,
        }
    }

    /// One request of each variant, every field randomized.
    fn all_requests(&mut self) -> Vec<ShardRequest> {
        vec![
            ShardRequest::Hello,
            ShardRequest::PointProbeBatch {
                table: self.string(),
                column: self.string(),
                values: self.values(),
            },
            ShardRequest::RangeProbeBatch {
                table: self.string(),
                column: self.string(),
                ranges: (0..self.below(6))
                    .map(|_| (self.value(), self.value()))
                    .collect(),
            },
            ShardRequest::Select {
                table: self.string(),
                probes: (0..self.below(4))
                    .map(|_| (self.string(), self.kind(), self.probe()))
                    .collect(),
                exec: self.exec(),
            },
            ShardRequest::JoinProbeBatch {
                table: self.string(),
                column: self.string(),
                kind: self.kind(),
                values: self.values(),
                lanes: 1 + self.below(8) as usize,
                threads: 1 + self.below(8) as usize,
            },
            ShardRequest::GroupPartial {
                table: self.string(),
                group_column: self.string(),
                measure: if self.below(2) == 0 {
                    Some(self.string())
                } else {
                    None
                },
                agg: self.agg_fn(),
                rids: self.opt_rids(),
            },
            ShardRequest::ColumnValues {
                table: self.string(),
                column: self.string(),
                rids: self.opt_rids(),
            },
            ShardRequest::Columns {
                table: self.string(),
            },
            ShardRequest::Rows {
                table: self.string(),
            },
            ShardRequest::Compile { spec: self.spec() },
            ShardRequest::RunSpec { spec: self.spec() },
            ShardRequest::ExecuteBatch {
                requests: (0..self.below(4)).map(|_| self.one_request()).collect(),
            },
            ShardRequest::Register {
                table: self.string(),
                columns: (0..self.below(4))
                    .map(|_| (self.string(), self.values()))
                    .collect(),
            },
            ShardRequest::DropTable {
                table: self.string(),
            },
            ShardRequest::CreateIndex {
                table: self.string(),
                column: self.string(),
                kind: self.kind(),
            },
            ShardRequest::DropIndex {
                table: self.string(),
                column: self.string(),
                kind: self.kind(),
            },
            ShardRequest::ReplaceColumn {
                table: self.string(),
                column: self.string(),
                values: self.values(),
            },
            ShardRequest::RebuildColumn {
                table: self.string(),
                column: self.string(),
            },
            ShardRequest::SetExecOptions { exec: self.exec() },
            ShardRequest::Shutdown,
            ShardRequest::Stats,
            ShardRequest::FetchSnapshot {
                chunk: self.next() as u32,
            },
            ShardRequest::InstallSnapshotChunk {
                chunk: self.next() as u32,
                total_chunks: self.next() as u32,
                crc: self.next() as u32,
                bytes: self.bytes(64),
            },
        ]
    }

    /// One response of each variant, every field randomized.
    fn all_responses(&mut self) -> Vec<ShardResponse> {
        vec![
            ShardResponse::RidSets((0..self.below(4)).map(|_| self.rids()).collect()),
            ShardResponse::Rids(self.rids()),
            ShardResponse::Values(self.values()),
            ShardResponse::Groups(
                (0..self.below(6))
                    .map(|_| GroupRow {
                        group: self.value(),
                        value: self.next() as i64,
                    })
                    .collect(),
            ),
            ShardResponse::Rows(self.result_rows()),
            ShardResponse::Batch(
                (0..self.below(4))
                    .map(|_| {
                        if self.below(2) == 0 {
                            Ok(self.result_rows())
                        } else {
                            Err(self.error())
                        }
                    })
                    .collect(),
            ),
            ShardResponse::Plan(self.plan()),
            ShardResponse::Names((0..self.below(5)).map(|_| self.string()).collect()),
            ShardResponse::Count(self.next()),
            ShardResponse::Rebuilt {
                sort_ns: self.next(),
                rebuilds: (0..self.below(4))
                    .map(|_| (self.kind(), self.next()))
                    .collect(),
            },
            ShardResponse::Info {
                generation: self.next(),
                swaps: self.next(),
                pinned: self.below(8),
                exec: self.exec(),
            },
            ShardResponse::Unit,
            ShardResponse::Stats {
                json: self.string(),
            },
            ShardResponse::Err(self.error()),
            ShardResponse::SnapshotChunk {
                chunk: self.next() as u32,
                total_chunks: self.next() as u32,
                total_len: self.next(),
                crc: self.next() as u32,
                bytes: self.bytes(64),
            },
        ]
    }
}

proptest! {
    /// Every request variant survives encode→decode byte-exactly.
    #[test]
    fn requests_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        for req in g.all_requests() {
            let bytes = req.encode();
            let back = ShardRequest::decode(&bytes, "peer");
            prop_assert_eq!(back.as_ref().ok(), Some(&req), "variant {:?}", req);
        }
    }

    /// Every response variant survives encode→decode byte-exactly.
    #[test]
    fn responses_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        for resp in g.all_responses() {
            let bytes = resp.encode();
            let back = ShardResponse::decode(&bytes, "peer");
            prop_assert_eq!(back.as_ref().ok(), Some(&resp), "variant {:?}", resp);
        }
    }

    /// Messages survive the frame layer too (header + checksum).
    #[test]
    fn frames_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        for req in g.all_requests() {
            let mut buf = Vec::new();
            write_frame(&mut buf, "peer", &req.encode()).expect("vec write");
            let payload = read_frame(&mut &buf[..], "peer").expect("frame intact");
            prop_assert_eq!(ShardRequest::decode(&payload, "peer").ok(), Some(req));
        }
    }

    /// Flipping any single byte of a frame yields a typed transport
    /// error — never a panic, never a silently-wrong message.
    #[test]
    fn corrupted_frames_error(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let reqs = g.all_requests();
        let req = &reqs[g.below(reqs.len() as u64) as usize];
        let mut buf = Vec::new();
        write_frame(&mut buf, "peer", &req.encode()).expect("vec write");
        let pos = g.below(buf.len() as u64) as usize;
        buf[pos] ^= 1 + g.below(255) as u8;
        let decoded = read_frame(&mut &buf[..], "peer")
            .and_then(|payload| ShardRequest::decode(&payload, "peer"));
        match decoded {
            Err(MmdbError::Transport { .. }) => {}
            Err(other) => prop_assert!(false, "non-transport error: {other:?}"),
            Ok(got) => prop_assert!(false, "corrupt frame decoded to {got:?}"),
        }
    }

    /// Truncating a frame anywhere yields a typed transport error.
    #[test]
    fn truncated_frames_error(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let reqs = g.all_requests();
        let req = &reqs[g.below(reqs.len() as u64) as usize];
        let mut buf = Vec::new();
        write_frame(&mut buf, "peer", &req.encode()).expect("vec write");
        buf.truncate(g.below(buf.len() as u64) as usize);
        let err = read_frame(&mut &buf[..], "peer").expect_err("truncated frame must error");
        prop_assert!(matches!(err, MmdbError::Transport { .. }), "{err:?}");
    }

    /// A frame stamped with any other protocol version is rejected
    /// with a Version fault before its payload is even read.
    #[test]
    fn wrong_version_errors(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut buf = Vec::new();
        write_frame(&mut buf, "peer", b"payload").expect("vec write");
        let mut bogus = 1 + g.below(u16::MAX as u64 - 1) as u16;
        if bogus == VERSION {
            bogus += 1;
        }
        buf[4..6].copy_from_slice(&bogus.to_le_bytes());
        let err = read_frame(&mut &buf[..], "peer").expect_err("wrong version must error");
        prop_assert!(
            matches!(
                err,
                MmdbError::Transport {
                    fault: TransportFault::Version,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    /// A traced request carries its span id across the wire, a traced
    /// response carries its timing tree — and untraced calls stay
    /// byte-identical to the v2 untraced helpers.
    #[test]
    fn traced_messages_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let span_id = 1 + g.below(u64::MAX - 1);
        let reqs = g.all_requests();
        let req = &reqs[g.below(reqs.len() as u64) as usize];
        let mut buf = Vec::new();
        write_request_traced(&mut buf, "peer", req, span_id).expect("vec write");
        let (back, id) = read_request_traced(&mut &buf[..], "peer").expect("traced request");
        prop_assert_eq!(&back, req);
        prop_assert_eq!(id, span_id);

        // Span id 0 means untraced and reads back as 0.
        let mut buf = Vec::new();
        write_request_traced(&mut buf, "peer", req, 0).expect("vec write");
        let (_, id) = read_request_traced(&mut &buf[..], "peer").expect("untraced request");
        prop_assert_eq!(id, 0);

        let tree = g.span_node(3);
        let resps = g.all_responses();
        let resp = &resps[g.below(resps.len() as u64) as usize];
        let mut buf = Vec::new();
        write_response_traced(&mut buf, "peer", resp, Some(&tree)).expect("vec write");
        let (back, node) = read_response_traced(&mut &buf[..], "peer").expect("traced response");
        prop_assert_eq!(&back, resp);
        prop_assert_eq!(node.as_ref(), Some(&tree));

        let mut buf = Vec::new();
        write_response_traced(&mut buf, "peer", resp, None).expect("vec write");
        let (_, node) = read_response_traced(&mut &buf[..], "peer").expect("untraced response");
        prop_assert_eq!(node, None);
    }

    /// Arbitrary garbage payloads never panic the decoders.
    #[test]
    fn garbage_payloads_never_panic(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let len = g.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        // Either outcome is fine — the property is "returns", not "errs":
        // a short garbage buffer can spell a valid tag-only message.
        let _ = ShardRequest::decode(&bytes, "peer");
        let _ = ShardResponse::decode(&bytes, "peer");
        let _ = read_frame(&mut &bytes[..], "peer");
    }
}
