//! Key-set generation.
//!
//! The canonical experiment (§6.1) uses `n` *distinct* random 4-byte
//! integer keys, stored sorted (the indexes all sit on a sorted array).
//! Additional distributions probe interpolation search's sensitivity to
//! the value distribution (§3, §6.3): evenly spaced keys are its best case,
//! polynomially skewed and clustered keys its bad cases.

use ccindex_common::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How key *values* are distributed over the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Distinct uniformly random values (the paper's default).
    UniformRandom,
    /// Exactly evenly spaced values with the given gap — linear data,
    /// interpolation search's best case.
    EvenlySpaced {
        /// Difference between consecutive keys (≥ 1).
        gap: u64,
    },
    /// Values spaced by `gap` with ±`jitter` uniform noise (still nearly
    /// linear).
    JitteredSpaced {
        /// Mean gap between consecutive keys.
        gap: u64,
        /// Maximum absolute jitter added to each key (must be < gap/2 to
        /// preserve distinctness).
        jitter: u64,
    },
    /// Polynomially skewed: the i-th smallest key is proportional to
    /// `(i/n)^exponent` of the key space — strongly non-linear CDF, the
    /// "non-uniform data" on which §6.3 reports interpolation search
    /// performs even worse than binary search.
    Polynomial {
        /// CDF exponent (≥ 2 gives a pronounced skew).
        exponent: u32,
    },
    /// Keys come in dense runs separated by wide gaps (e.g. surrogate keys
    /// from several loads); piecewise-linear CDF with jumps.
    Clustered {
        /// Number of dense clusters.
        clusters: usize,
        /// Gap between consecutive keys inside a cluster.
        intra_gap: u64,
    },
}

/// Deterministic builder for sorted, distinct key sets.
#[derive(Debug, Clone)]
pub struct KeySetBuilder {
    n: usize,
    seed: u64,
    distribution: KeyDistribution,
}

impl KeySetBuilder {
    /// `n` keys with the paper's default distribution.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            seed: crate::DEFAULT_SEED,
            distribution: KeyDistribution::UniformRandom,
        }
    }

    /// Use a specific RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use a specific value distribution.
    pub fn distribution(mut self, d: KeyDistribution) -> Self {
        self.distribution = d;
        self
    }

    /// Generate the sorted, distinct key set.
    pub fn build<K: Key>(&self) -> Vec<K> {
        let max_rank = K::MAX_KEY.to_rank();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ranks = match self.distribution {
            KeyDistribution::UniformRandom => distinct_uniform(self.n, max_rank, &mut rng),
            KeyDistribution::EvenlySpaced { gap } => {
                assert!(gap >= 1, "gap must be >= 1");
                (0..self.n as u64).map(|i| i.saturating_mul(gap)).collect()
            }
            KeyDistribution::JitteredSpaced { gap, jitter } => {
                assert!(gap >= 1 && jitter < gap / 2 + 1, "jitter too large for gap");
                (0..self.n as u64)
                    .map(|i| {
                        let base = i * gap + gap / 2;
                        let j = if jitter == 0 {
                            0
                        } else {
                            rng.gen_range(0..=2 * jitter) as i64 - jitter as i64
                        };
                        (base as i64 + j) as u64
                    })
                    .collect()
            }
            KeyDistribution::Polynomial { exponent } => {
                assert!(exponent >= 1);
                let n = self.n.max(1) as f64;
                let span = (max_rank as f64).min(1e18);
                let mut out: Vec<u64> = (0..self.n)
                    .map(|i| {
                        let frac = (i as f64 + 1.0) / n;
                        (frac.powi(exponent as i32) * span) as u64
                    })
                    .collect();
                dedup_ranks(&mut out);
                out
            }
            KeyDistribution::Clustered {
                clusters,
                intra_gap,
            } => {
                assert!(clusters >= 1 && intra_gap >= 1);
                let per = crate::keys::ceil_div(self.n, clusters);
                let cluster_span = per as u64 * intra_gap;
                // Clusters separated by 1000x their own width.
                let stride = cluster_span.saturating_mul(1000).max(cluster_span + 1);
                (0..self.n)
                    .map(|i| {
                        let c = (i / per) as u64;
                        let off = (i % per) as u64;
                        c * stride + off * intra_gap
                    })
                    .collect()
            }
        };
        let mut keys: Vec<K> = ranks.into_iter().map(K::from_rank).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            self.n,
            "distribution produced non-distinct or clipped keys"
        );
        keys
    }
}

/// `ceil(a/b)` (local copy to avoid the dependency direction).
pub(crate) fn ceil_div(a: usize, b: usize) -> usize {
    if a == 0 {
        0
    } else {
        (a - 1) / b + 1
    }
}

/// Sample `n` distinct uniform ranks in `[0, max_rank]`.
///
/// Oversamples into a sorted/deduped vector and tops up until the count is
/// reached — O(n log n), fine for the ≤ 30 M-key experiments.
fn distinct_uniform(n: usize, max_rank: u64, rng: &mut StdRng) -> Vec<u64> {
    assert!(
        (max_rank as u128) + 1 >= n as u128,
        "key space too small for {n} distinct keys"
    );
    let mut out: Vec<u64> = Vec::with_capacity(n + n / 8 + 16);
    out.extend((0..n).map(|_| rng.gen_range(0..=max_rank)));
    loop {
        out.sort_unstable();
        out.dedup();
        if out.len() >= n {
            // Drop the surplus at random positions so the value
            // distribution stays uniform (truncation would bias against
            // large keys).
            while out.len() > n {
                let i = rng.gen_range(0..out.len());
                out.swap_remove(i);
            }
            out.sort_unstable();
            return out;
        }
        let missing = n - out.len();
        for _ in 0..missing + missing / 4 + 4 {
            out.push(rng.gen_range(0..=max_rank));
        }
    }
}

fn dedup_ranks(ranks: &mut [u64]) {
    ranks.sort_unstable();
    let mut prev: Option<u64> = None;
    for r in ranks.iter_mut() {
        if let Some(p) = prev {
            if *r <= p {
                *r = p + 1;
            }
        }
        prev = Some(*r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_are_distinct_sorted_deterministic() {
        let a: Vec<u32> = KeySetBuilder::new(10_000).build();
        let b: Vec<u32> = KeySetBuilder::new(10_000).build();
        assert_eq!(a, b, "same seed must reproduce the same keys");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        let c: Vec<u32> = KeySetBuilder::new(10_000).seed(99).build();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn evenly_spaced_is_linear() {
        let keys: Vec<u32> = KeySetBuilder::new(1000)
            .distribution(KeyDistribution::EvenlySpaced { gap: 7 })
            .build();
        assert_eq!(keys[0], 0);
        assert_eq!(keys[999], 999 * 7);
        assert!(keys.windows(2).all(|w| w[1] - w[0] == 7));
    }

    #[test]
    fn jittered_keys_stay_distinct() {
        let keys: Vec<u32> = KeySetBuilder::new(5000)
            .distribution(KeyDistribution::JitteredSpaced {
                gap: 100,
                jitter: 40,
            })
            .build();
        assert_eq!(keys.len(), 5000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn polynomial_skew_is_nonlinear() {
        let keys: Vec<u32> = KeySetBuilder::new(10_000)
            .distribution(KeyDistribution::Polynomial { exponent: 3 })
            .build();
        assert_eq!(keys.len(), 10_000);
        // Median key should sit far below the midpoint of the value range
        // (the mass is crammed at the low end).
        let median = keys[5_000] as f64;
        let max = keys[9_999] as f64;
        assert!(median < 0.2 * max, "median {median} vs max {max}");
    }

    #[test]
    fn clustered_keys_have_gaps() {
        let keys: Vec<u64> = KeySetBuilder::new(1000)
            .distribution(KeyDistribution::Clustered {
                clusters: 10,
                intra_gap: 2,
            })
            .build();
        assert_eq!(keys.len(), 1000);
        let max_gap = keys.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(
            max_gap > 1000,
            "expected inter-cluster jumps, got {max_gap}"
        );
    }

    #[test]
    fn u16_small_space_still_works() {
        let keys: Vec<u16> = KeySetBuilder::new(30_000).build();
        assert_eq!(keys.len(), 30_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "key space too small")]
    fn rejects_impossible_distinct_request() {
        let _: Vec<u16> = KeySetBuilder::new(70_000).build();
    }

    #[test]
    fn paper_scale_one_million_fast() {
        let keys: Vec<u32> = KeySetBuilder::new(1_000_000).build();
        assert_eq!(keys.len(), 1_000_000);
    }
}
