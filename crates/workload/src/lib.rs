//! Workload generation for the ccindex experiments.
//!
//! §6.1 of the paper fixes the experimental protocol: "All the keys are
//! distinct integers and are chosen randomly. Each key takes four bytes.
//! The keys to look up are generated in advance ... We performed 100,000
//! searches on randomly chosen matching keys." This crate reproduces that
//! protocol and adds the variations the paper discusses qualitatively:
//!
//! * [`keys`] — distinct random key sets (plus evenly spaced / clustered /
//!   polynomially skewed value distributions used to probe interpolation
//!   search, §3 "It doesn't perform very well on random data and performs
//!   even worse on non-uniform data"),
//! * [`lookups`] — pre-generated probe streams: all-hit, hit/miss mixes,
//!   and Zipf-skewed hot-key streams (warm-cache behaviour, §5.1),
//! * [`updates`] — batch insert/delete streams for the OLAP rebuild cycle
//!   (§2.3, §4.1.1),
//! * [`zipf`] — a small exact Zipf sampler (kept dependency-free).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod keys;
pub mod lookups;
pub mod updates;
pub mod zipf;

pub use keys::{KeyDistribution, KeySetBuilder};
pub use lookups::{LookupStream, MissMode};
pub use updates::{BatchUpdate, UpdateGenerator};
pub use zipf::Zipf;

/// Default experiment seed; all generators are deterministic given a seed.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// The paper's lookup count per measurement (§6.1).
pub const PAPER_LOOKUPS: usize = 100_000;
