//! Pre-generated lookup streams.
//!
//! §6.1: "The keys to look up are generated in advance to prevent the key
//! generating time from affecting our measurements. We performed 100,000
//! searches on randomly chosen matching keys." [`LookupStream`] reproduces
//! that, plus miss mixes and Zipf-skewed hot-key streams.

use crate::zipf::Zipf;
use ccindex_common::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How missing probes are generated, for streams that include misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissMode {
    /// Uniform random values over the whole key space (likely absent for
    /// sparse key sets; the stream re-draws values that happen to exist).
    UniformAbsent,
    /// Values adjacent to existing keys (key + 1 where that is absent) —
    /// worst case for methods that must complete a full descent to decide.
    Adjacent,
}

/// A reproducible sequence of probe keys for an experiment.
#[derive(Debug, Clone)]
pub struct LookupStream<K> {
    probes: Vec<K>,
    expected_hits: usize,
}

impl<K: Key> LookupStream<K> {
    /// The paper's protocol: `count` uniformly random *matching* keys.
    pub fn successful(keys: &[K], count: usize, seed: u64) -> Self {
        assert!(
            !keys.is_empty(),
            "cannot draw lookups from an empty key set"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let probes = (0..count)
            .map(|_| keys[rng.gen_range(0..keys.len())])
            .collect();
        Self {
            probes,
            expected_hits: count,
        }
    }

    /// A mix of hits and misses; `hit_ratio` in `[0, 1]`. `keys` must be
    /// sorted (it is binary-searched to verify absence).
    pub fn mixed(keys: &[K], count: usize, hit_ratio: f64, mode: MissMode, seed: u64) -> Self {
        assert!(!keys.is_empty());
        assert!((0.0..=1.0).contains(&hit_ratio), "hit_ratio out of range");
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probes = Vec::with_capacity(count);
        let mut hits = 0usize;
        for _ in 0..count {
            if rng.gen_range(0.0..1.0) < hit_ratio {
                probes.push(keys[rng.gen_range(0..keys.len())]);
                hits += 1;
            } else {
                probes.push(Self::draw_absent(keys, mode, &mut rng));
            }
        }
        Self {
            probes,
            expected_hits: hits,
        }
    }

    /// Zipf-skewed stream over the existing keys (hot-key locality): rank 0
    /// = a random "hot" key, smaller ranks are probed more often.
    pub fn zipf(keys: &[K], count: usize, theta: f64, seed: u64) -> Self {
        assert!(!keys.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        // Randomize which keys are hot by drawing a random starting offset
        // and stride over the key set.
        let z = Zipf::new(keys.len(), theta);
        let offset = rng.gen_range(0..keys.len());
        let probes = (0..count)
            .map(|_| keys[(z.sample(&mut rng) + offset) % keys.len()])
            .collect();
        Self {
            probes,
            expected_hits: count,
        }
    }

    fn draw_absent(keys: &[K], mode: MissMode, rng: &mut StdRng) -> K {
        match mode {
            MissMode::UniformAbsent => loop {
                let cand = K::from_rank(rng.gen_range(0..=K::MAX_KEY.to_rank()));
                if keys.binary_search(&cand).is_err() {
                    return cand;
                }
            },
            MissMode::Adjacent => loop {
                let base = keys[rng.gen_range(0..keys.len())];
                let cand = K::from_rank(base.to_rank().saturating_add(1));
                if cand != base && keys.binary_search(&cand).is_err() {
                    return cand;
                }
            },
        }
    }

    /// The probe sequence.
    pub fn probes(&self) -> &[K] {
        &self.probes
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// How many probes are guaranteed to hit.
    pub fn expected_hits(&self) -> usize {
        self.expected_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyset() -> Vec<u32> {
        (0..10_000u32).map(|i| i * 3).collect()
    }

    #[test]
    fn successful_stream_only_contains_existing_keys() {
        let keys = keyset();
        let s = LookupStream::successful(&keys, 5000, 42);
        assert_eq!(s.len(), 5000);
        assert_eq!(s.expected_hits(), 5000);
        assert!(s.probes().iter().all(|k| keys.binary_search(k).is_ok()));
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let keys = keyset();
        let a = LookupStream::successful(&keys, 100, 7);
        let b = LookupStream::successful(&keys, 100, 7);
        let c = LookupStream::successful(&keys, 100, 8);
        assert_eq!(a.probes(), b.probes());
        assert_ne!(a.probes(), c.probes());
    }

    #[test]
    fn mixed_stream_hit_ratio_respected() {
        let keys = keyset();
        let s = LookupStream::mixed(&keys, 10_000, 0.7, MissMode::UniformAbsent, 11);
        let actual_hits = s
            .probes()
            .iter()
            .filter(|k| keys.binary_search(k).is_ok())
            .count();
        assert_eq!(actual_hits, s.expected_hits());
        assert!(
            (actual_hits as f64 - 7000.0).abs() < 300.0,
            "hits={actual_hits}"
        );
    }

    #[test]
    fn adjacent_misses_are_adjacent() {
        let keys = keyset();
        let s = LookupStream::mixed(&keys, 2000, 0.0, MissMode::Adjacent, 3);
        assert_eq!(s.expected_hits(), 0);
        for k in s.probes() {
            assert!(keys.binary_search(k).is_err());
            assert!(keys.binary_search(&(k - 1)).is_ok(), "{k} not adjacent");
        }
    }

    #[test]
    fn zipf_stream_is_skewed() {
        let keys = keyset();
        let s = LookupStream::zipf(&keys, 50_000, 1.2, 5);
        let mut counts = std::collections::HashMap::new();
        for k in s.probes() {
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > 50_000 / 100,
            "hottest key should dominate a uniform share, got {max}"
        );
    }

    #[test]
    #[should_panic(expected = "empty key set")]
    fn rejects_empty_keyset() {
        let _ = LookupStream::<u32>::successful(&[], 10, 0);
    }
}
