//! Batch-update streams for the OLAP rebuild cycle.
//!
//! §1/§2.3: "OLAP workloads are query-intensive, and have infrequent batch
//! updates. ... it may be relatively cheap to rebuild an index from scratch
//! after a batch of updates." These generators produce the batches that
//! `mmdb::update` applies before rebuilding, and that the Fig. 9 rebuild
//! benchmark uses as its trigger.

use ccindex_common::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One batch of modifications against a sorted key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchUpdate<K> {
    /// New keys, none of which exist in the base set (sorted, distinct).
    pub inserts: Vec<K>,
    /// Existing keys to remove (sorted, distinct).
    pub deletes: Vec<K>,
}

impl<K: Key> BatchUpdate<K> {
    /// Apply this batch to a sorted key vector, returning the new sorted
    /// vector (the merge the paper assumes precedes an index rebuild).
    pub fn apply(&self, base: &[K]) -> Vec<K> {
        debug_assert!(base.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(base.len() + self.inserts.len());
        let mut del = self.deletes.iter().peekable();
        let mut ins = self.inserts.iter().peekable();
        for &k in base {
            while let Some(&&i) = ins.peek() {
                if i < k {
                    out.push(i);
                    ins.next();
                } else {
                    break;
                }
            }
            if del.peek() == Some(&&k) {
                del.next();
                continue;
            }
            out.push(k);
        }
        out.extend(ins.copied());
        out
    }

    /// Net size change this batch produces.
    pub fn net_delta(&self) -> isize {
        self.inserts.len() as isize - self.deletes.len() as isize
    }
}

/// Deterministic generator of batches against a base key set.
#[derive(Debug)]
pub struct UpdateGenerator {
    rng: StdRng,
}

impl UpdateGenerator {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produce a batch of `inserts` new keys and `deletes` existing keys
    /// against the sorted `base` set.
    pub fn batch<K: Key>(&mut self, base: &[K], inserts: usize, deletes: usize) -> BatchUpdate<K> {
        assert!(deletes <= base.len(), "cannot delete more keys than exist");
        // Deletes: sample distinct positions.
        let mut positions: Vec<usize> = (0..base.len()).collect();
        for i in 0..deletes.min(base.len()) {
            let j = self.rng.gen_range(i..positions.len());
            positions.swap(i, j);
        }
        let mut del: Vec<K> = positions[..deletes].iter().map(|&p| base[p]).collect();
        del.sort_unstable();

        // Inserts: fresh keys not present in base.
        let mut ins: Vec<K> = Vec::with_capacity(inserts);
        let max = K::MAX_KEY.to_rank();
        while ins.len() < inserts {
            let cand = K::from_rank(self.rng.gen_range(0..=max));
            if base.binary_search(&cand).is_err() && ins.binary_search(&cand).is_err() {
                let pos = ins.partition_point(|k| *k < cand);
                ins.insert(pos, cand);
            }
        }
        BatchUpdate {
            inserts: ins,
            deletes: del,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<u32> {
        (0..1000u32).map(|i| i * 10).collect()
    }

    #[test]
    fn batch_has_requested_shape() {
        let b = base();
        let mut g = UpdateGenerator::new(1);
        let batch = g.batch(&b, 50, 20);
        assert_eq!(batch.inserts.len(), 50);
        assert_eq!(batch.deletes.len(), 20);
        assert_eq!(batch.net_delta(), 30);
        assert!(batch.inserts.windows(2).all(|w| w[0] < w[1]));
        assert!(batch.deletes.windows(2).all(|w| w[0] < w[1]));
        // Inserts absent from base, deletes present.
        assert!(batch.inserts.iter().all(|k| b.binary_search(k).is_err()));
        assert!(batch.deletes.iter().all(|k| b.binary_search(k).is_ok()));
    }

    #[test]
    fn apply_merges_correctly() {
        let b = vec![10u32, 20, 30, 40];
        let batch = BatchUpdate {
            inserts: vec![5, 25, 50],
            deletes: vec![20, 40],
        };
        assert_eq!(batch.apply(&b), vec![5, 10, 25, 30, 50]);
    }

    #[test]
    fn apply_preserves_sortedness_and_size() {
        let b = base();
        let mut g = UpdateGenerator::new(2);
        let batch = g.batch(&b, 137, 41);
        let merged = batch.apply(&b);
        assert_eq!(merged.len(), 1000 + 137 - 41);
        assert!(merged.windows(2).all(|w| w[0] < w[1]));
        // Every delete gone, every insert present.
        for k in &batch.deletes {
            assert!(merged.binary_search(k).is_err());
        }
        for k in &batch.inserts {
            assert!(merged.binary_search(k).is_ok());
        }
    }

    #[test]
    fn empty_batch_is_identity() {
        let b = base();
        let batch = BatchUpdate::<u32> {
            inserts: vec![],
            deletes: vec![],
        };
        assert_eq!(batch.apply(&b), b);
    }

    #[test]
    #[should_panic(expected = "cannot delete more")]
    fn overdelete_rejected() {
        let b = vec![1u32, 2];
        let mut g = UpdateGenerator::new(3);
        let _ = g.batch(&b, 0, 5);
    }
}
