//! A small exact Zipf(θ) sampler over ranks `0..n`.
//!
//! Used for hot-key lookup streams (warm-cache behaviour, §5.1: "If a bunch
//! of searches are performed in sequence, the top level nodes will stay in
//! the cache") and for the skewed data §3.5 warns affects hash indexes.
//!
//! Implementation: inverse-CDF over the precomputed harmonic prefix sums
//! (O(n) setup, O(log n) per sample). Kept dependency-free on purpose; the
//! workspace's only sampling dependency is `rand` itself.

use rand::Rng;

/// Zipf distribution over `0..n` with skew parameter `theta > 0`.
///
/// `P(rank = i) ∝ 1 / (i + 1)^theta`. `theta → 0` approaches uniform;
/// `theta = 1` is the classic Zipf.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` ranks with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta > 0.0 && theta.is_finite(), "theta must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP round-off at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i` (for tests).
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        // Classic Zipf: p(0)/p(1) == 2.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let expected = z.pmf(i) * draws as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 50.0,
                "rank {i}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn high_theta_concentrates() {
        let z = Zipf::new(1000, 3.0);
        assert!(z.pmf(0) > 0.8, "theta=3 should put most mass on rank 0");
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
