//! The OLAP batch-update cycle at scale (§2.3, §4.1.1, Fig. 9).
//!
//! "Although it's difficult to incrementally update a full CSS-tree, it's
//! relatively inexpensive to build such a tree from scratch. ... to build
//! a full CSS-tree from a sorted array of twenty-five million integer keys
//! takes less than one second on a modern machine."
//!
//! This example ingests batches of inserts/deletes against a 5 M-key
//! index, rebuilding the CSS-tree each time, and reports merge + rebuild
//! cost per batch — then verifies every batch's effect.
//!
//! ```sh
//! cargo run --release --example batch_rebuild
//! ```

use ccindex::db::{apply_batch, IndexKind};
use ccindex::gen::{KeySetBuilder, UpdateGenerator};
use ccindex::prelude::*;

fn main() {
    let n = 5_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let mut current = SortedArray::from_slice(&keys);
    let mut updates = UpdateGenerator::new(42);

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>14} {:>14}",
        "batch", "inserts", "deletes", "keys after", "merge", "rebuild"
    );
    for batch_no in 0..5 {
        let batch = updates.batch::<u32>(current.as_slice(), 50_000, 20_000);
        let result = apply_batch(&current, &batch.inserts, &batch.deletes, IndexKind::FullCss);

        // Verify: inserts present, deletes gone.
        for k in batch.inserts.iter().step_by(1000) {
            assert!(result.index.search(*k).is_some(), "insert {k} missing");
        }
        for k in batch.deletes.iter().step_by(1000) {
            // The key may still exist if it was duplicated; batch
            // generation picks distinct existing keys, so it must be gone.
            assert!(
                result.index.search(*k).is_none(),
                "delete {k} still present"
            );
        }

        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>14?} {:>14?}",
            batch_no,
            batch.inserts.len(),
            batch.deletes.len(),
            result.keys.len(),
            result.merge_time,
            result.rebuild_time
        );
        current = result.keys;
    }

    // Fig. 9's headline at full scale: one 25 M-key build.
    let big: Vec<u32> = KeySetBuilder::new(25_000_000).seed(9).build();
    let arr = SortedArray::from_slice(&big);
    let t = std::time::Instant::now();
    let css = FullCssTree::<u32, 16>::from_shared(arr);
    let elapsed = t.elapsed();
    println!(
        "\nfull CSS-tree over 25,000,000 keys built in {elapsed:?} \
         (paper: < 1 s on 1998 hardware); directory = {} MB",
        css.space().indirect_bytes / 1_000_000
    );
}
