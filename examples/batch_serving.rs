//! Batch-formation serving tour: concurrent clients probing one catalog
//! through a `BatchServer`, with the window bounds swept so the effect
//! of coalescing is visible, then the same traffic through a 4-shard
//! catalog — answers identical, routing sharded.
//!
//! Run with `cargo run --release --example batch_serving`.

use ccindex::prelude::*;
use ccindex::serve::ServeStats;
use std::time::{Duration, Instant};

fn main() -> Result<(), MmdbError> {
    let n = 400_000usize;
    let clients = 8usize;
    let per_client = 400usize;

    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64 / 2)) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let mut db = Database::new();
    db.register(orders())?;
    db.create_index("orders", "amount", IndexKind::FullCss)?;

    println!("== Batch-formation serving: {n} rows, {clients} clients x {per_client} probes ==");
    let serve = |server: &BatchServer<'_, Database>| -> (Vec<Vec<ResultRows>>, ServeStats, f64) {
        let t0 = Instant::now();
        let (answers, stats) = server.serve_concurrent(clients, |c, client| {
            let pending: Vec<_> = (0..per_client)
                .map(|k| {
                    let v = ((c * 2_654_435_761 + k * 48_271) % n) as i64;
                    client.submit(Request::point("orders", "amount", v))
                })
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("served"))
                .collect::<Vec<_>>()
        });
        (answers, stats, t0.elapsed().as_secs_f64())
    };

    let mut reference = None;
    for batch_max in [1usize, 16, 64] {
        let server = BatchServer::with_options(
            &db,
            ServeOptions {
                batch_max,
                batch_wait: Duration::from_micros(200),
            },
        );
        let (answers, stats, secs) = serve(&server);
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(&answers, r, "coalescing must not change answers"),
        }
        println!(
            "batch_max {batch_max:>3}: {:>5} windows (deepest {:>3}), {:>8} requests in {secs:.4}s",
            stats.windows, stats.largest_window, stats.requests
        );
    }

    // The same traffic through a sharded catalog: requests scatter
    // through the partitioner's routing, answers stay identical.
    let mut sharded = ShardedDatabase::hash(4)?;
    sharded.register(orders(), "amount")?;
    sharded.create_index("orders", "amount", IndexKind::FullCss)?;
    let server = BatchServer::with_options(&sharded, ServeOptions::batch_max(64));
    let t0 = Instant::now();
    let (answers, stats) = server.serve_concurrent(clients, |c, client| {
        let pending: Vec<_> = (0..per_client)
            .map(|k| {
                let v = ((c * 2_654_435_761 + k * 48_271) % n) as i64;
                client.submit(Request::point("orders", "amount", v))
            })
            .collect();
        pending
            .into_iter()
            .map(|p| p.wait().expect("served"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        Some(answers),
        reference,
        "sharded serving answers byte-identically"
    );
    println!(
        "hash x4      : {:>5} windows (deepest {:>3}), {:>8} requests in {:.4}s (byte-identical)",
        stats.windows,
        stats.largest_window,
        stats.requests,
        t0.elapsed().as_secs_f64()
    );

    // Mixed windows: ranges and full query plans ride alongside points.
    let (mixed, _) = server.serve_concurrent(2, |_, client| {
        let a = client.submit(Request::range("orders", "amount", 100, 200));
        let b = client.submit(Request::query(
            QuerySpec::table("orders").filter(between("amount", 0, 50)),
        ));
        (a.wait().expect("served"), b.wait().expect("served"))
    });
    let (ranged, planned) = &mixed[0];
    println!(
        "mixed window : range hit {} rows, plan hit {} rows",
        match ranged {
            ResultRows::Rids(r) => r.len(),
            _ => unreachable!(),
        },
        match planned {
            ResultRows::Rids(r) => r.len(),
            _ => unreachable!(),
        }
    );
    Ok(())
}
