//! The batch-probe API, end to end: interleaved CSS lookups, the
//! runtime-tunable lane count, batched selections, and the
//! batched indexed nested-loop join.
//!
//! ```sh
//! cargo run --release --example batched_probes
//! ```

use ccindex::db::domain::Value;
use ccindex::db::{
    build_index, indexed_nested_loop_join, point_select_many, range_select_many, RidList,
    TableBuilder,
};
use ccindex::prelude::*;
use std::time::Instant;

fn main() {
    // A sorted array big enough that probes miss the cache.
    let n = 4_000_000u32;
    let keys: Vec<u32> = (0..n).map(|i| i * 2).collect();
    let arr = SortedArray::from_slice(&keys);
    let probes: Vec<u32> = (0..100_000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % (2 * n))
        .collect();

    // One tree, probed three ways: per-probe, via the trait batch entry
    // point (DEFAULT_BATCH_LANES interleaved descents), and with an
    // explicit lane count through DynCssTree.
    let css = DynCssTree::build(CssVariant::Full, 16, arr.clone());

    let t0 = Instant::now();
    let sequential: Vec<usize> = probes.iter().map(|&p| css.lower_bound(p)).collect();
    let t_seq = t0.elapsed();

    let t1 = Instant::now();
    let batched = css.lower_bound_batch(&probes);
    let t_bat = t1.elapsed();
    assert_eq!(batched, sequential);
    println!(
        "lower bounds over {} probes: sequential {:?}, batched ({} lanes) {:?}",
        probes.len(),
        t_seq,
        DEFAULT_BATCH_LANES,
        t_bat
    );

    // The lane count is a runtime tuning knob.
    for lanes in [1usize, 4, 8, 16, 32] {
        let t = Instant::now();
        let got = css.lower_bound_batch_lanes(&probes, lanes);
        assert_eq!(got, sequential);
        println!("  lanes = {lanes:>2}: {:?}", t.elapsed());
    }

    // Batched selections on the database substrate: one domain encoding
    // and one index batch for many query constants.
    let amounts: Vec<i64> = (0..50_000).map(|i| (i * 37) % 1_000).collect();
    let table = TableBuilder::new("orders")
        .int_column("amount", amounts)
        .build()
        .expect("one column");
    let col = table.column("amount").expect("column");
    let rids = RidList::for_column(col);
    let index = build_index(IndexKind::FullCss, rids.keys());

    let wanted: Vec<Value> = (0..200).map(|v| Value::Int(v * 5)).collect();
    let hits = point_select_many(col, &rids, index.as_ref(), &wanted);
    println!(
        "point_select_many: {} probe values, {} matching rows",
        wanted.len(),
        hits.iter().map(Vec::len).sum::<usize>()
    );

    let ranges: Vec<(Value, Value)> = (0..50)
        .map(|i| (Value::Int(i * 20), Value::Int(i * 20 + 9)))
        .collect();
    let index = ccindex::db::build_ordered_index(IndexKind::FullCss, rids.keys());
    let banded = range_select_many(col, &rids, index.as_ref(), &ranges);
    println!(
        "range_select_many: {} ranges, {} matching rows",
        ranges.len(),
        banded.iter().map(Vec::len).sum::<usize>()
    );

    // The join streams outer rows through the inner index in probe
    // blocks; the CSS-tree answers each block with interleaved descents.
    let outer = TableBuilder::new("outer")
        .int_column("k", (0..30_000).map(|i| i % 500))
        .build()
        .expect("one column");
    let inner = TableBuilder::new("inner")
        .int_column("k", (0..400i64).collect::<Vec<_>>())
        .build()
        .expect("one column");
    let icol = inner.column("k").expect("column");
    let irids = RidList::for_column(icol);
    let iindex = build_index(IndexKind::FullCss, irids.keys());
    let joined = indexed_nested_loop_join(
        outer.column("k").expect("column"),
        icol,
        &irids,
        iindex.as_ref(),
    );
    println!(
        "batched indexed nested-loop join: {} result rows",
        joined.len()
    );
}
