//! Replay index probes through the paper's 1998 machines.
//!
//! The paper's whole argument is a cache-miss argument. This example runs
//! the same probe stream against binary search, a T-tree, a B+-tree and a
//! CSS-tree, replays each method's exact memory trace through simulated
//! UltraSparc II and Pentium II cache hierarchies, and prints per-lookup
//! misses and simulated time — the quantities behind Figs. 10–13.
//!
//! ```sh
//! cargo run --release --example cache_simulation
//! ```

use ccindex::db::{build_index, IndexKind};
use ccindex::gen::{KeySetBuilder, LookupStream};
use ccindex::prelude::*;

fn main() {
    let n = 2_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, 50_000, 3);

    for machine_name in ["ultrasparc", "pentium2", "modern"] {
        let mut machine = Machine::by_name(machine_name).expect("preset");
        println!(
            "\n=== {} ({} cache levels) ===",
            machine.spec.name,
            machine.hierarchy.depth()
        );
        println!(
            "{:>22} {:>12} {:>12} {:>14}",
            "method", "L1 miss/op", "LLC miss/op", "sim time (s)"
        );
        for kind in [
            IndexKind::BinarySearch,
            IndexKind::BinaryTree,
            IndexKind::TTree,
            IndexKind::BPlusTree,
            IndexKind::FullCss,
            IndexKind::LevelCss,
            IndexKind::Hash,
        ] {
            let index = build_index(kind, &arr);
            machine.hierarchy.flush(true);
            {
                let mut tracer = SimTracer::new(&mut machine.hierarchy);
                for &p in stream.probes() {
                    let _ = index.search_traced(p, &mut tracer);
                }
            }
            let stats = machine.hierarchy.stats();
            let outcome = machine.spec.time_model().evaluate(&stats);
            let per = stream.len() as f64;
            let llc = stats.levels.len() - 1;
            println!(
                "{:>22} {:>12.2} {:>12.2} {:>14.4}",
                index.name(),
                stats.levels[0].misses as f64 / per,
                stats.levels[llc].misses as f64 / per,
                outcome.seconds
            );
        }
    }

    println!(
        "\nThe ranking — hash < CSS < B+ < binary/T-tree/BST — is the paper's\n\
         Figs. 10–11; the 1986-vs-1999 reversal (T-trees losing to arrays)\n\
         is entirely a cache-line-utilisation effect."
    );
}
