//! Persistence and cold start: save a catalog to the paged on-disk
//! container, reopen it, and get byte-identical answers — without
//! re-sorting a single RID list or rebuilding a single index.
//!
//! The container stores each column's sorted RID list and each
//! CSS-tree's directory levels as validated, CRC-checksummed pages, so
//! `Database::open_from` is a decode, not a rebuild. A corrupted or
//! truncated file surfaces as a typed `MmdbError::Storage` — never a
//! panic.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use ccindex::db::StorageFault;
use ccindex::prelude::*;
use std::time::Instant;

fn main() -> Result<(), MmdbError> {
    let n = 1_000_000usize;

    // Build a catalog the expensive way: register rows, sort RID lists,
    // build indexes.
    let t0 = Instant::now();
    let mut db = Database::new();
    db.register(
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64)) as i64),
            )
            .str_column("day", (0..n).map(|i| ["mon", "tue", "wed", "thu"][i % 4]))
            .build()?,
    )?;
    db.create_index("orders", "amount", IndexKind::FullCss)?;
    db.create_index("orders", "amount", IndexKind::Hash)?;
    db.create_index("orders", "day", IndexKind::Hash)?;
    let built = t0.elapsed();

    // Save the whole catalog — tables, columns, RID lists, CSS
    // directory levels — as one paged, checksummed container.
    let dir = std::env::temp_dir().join(format!("ccindex-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| MmdbError::Storage {
        path: dir.display().to_string(),
        fault: StorageFault::Write,
        detail: e.to_string(),
    })?;
    let path = dir.join("orders.ccsp");
    db.save_to(&path)?;

    // Cold start: reopen from disk. No sorting, no index builds — the
    // pages decode straight into the serving structures.
    let t0 = Instant::now();
    let reopened = Database::open_from(&path)?;
    let opened = t0.elapsed();

    // Byte-identical answers, live vs reopened.
    let query = |db: &Database| -> Result<ResultRows, MmdbError> {
        Ok(db
            .query("orders")
            .filter(between("amount", 1_000, 50_000))
            .group_by("day", sum("amount"))
            .run()?
            .rows()
            .clone())
    };
    let live_rows = query(&db)?;
    let cold_rows = query(&reopened)?;
    assert_eq!(live_rows, cold_rows, "cold start changed answers");

    println!("build from rows: {built:.2?}");
    println!("open from disk:  {opened:.2?}");
    println!("answers match:   {live_rows:?}");

    // Storage faults are typed, never panics: opening a missing file
    // names the path and the failing stage.
    let missing = Database::open_from(dir.join("nope.ccsp"));
    match missing {
        Err(MmdbError::Storage { fault, .. }) => {
            assert_eq!(fault, StorageFault::Open);
            println!("missing file:    typed Storage({fault:?}) error, as promised");
        }
        other => panic!("expected a typed storage error, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
