//! Distributed shards: the same scatter-gather catalog, with every
//! shard behind a TCP socket.
//!
//! Builds the orders/customers workload three ways — a plain
//! `Database`, 4 in-process shards, and 4 `ShardServer`s on loopback
//! TCP fronted by `RemoteShard` clients — and shows every query
//! answering byte-identically across all three, updates (including a
//! re-partitioning shard-key replacement) travelling the wire, and a
//! killed shard surfacing as a typed `MmdbError::Transport` instead of
//! a panic or a hang.
//!
//! ```sh
//! cargo run --release --example distributed_shards
//! ```

use ccindex::db::Value;
use ccindex::prelude::*;

fn main() -> Result<(), MmdbError> {
    let n = 40_000usize;
    let n_customers = 1_000i64;
    let orders = || {
        TableBuilder::new("orders")
            .int_column("cust", (0..n).map(|i| (i as i64 * 131) % n_customers))
            .int_column("amount", (0..n).map(|i| (i as i64 * 17) % 10_000))
            .build()
    };
    let customers = || {
        TableBuilder::new("customers")
            .int_column("id", 0..n_customers)
            .str_column(
                "region",
                (0..n_customers as usize).map(|i| ["north", "south", "east", "west"][i % 4]),
            )
            .build()
    };
    let index_all = |db: &mut dyn FnMut(&str, &str, IndexKind) -> Result<(), MmdbError>| {
        db("orders", "cust", IndexKind::Hash)?;
        db("orders", "cust", IndexKind::FullCss)?;
        db("orders", "amount", IndexKind::FullCss)?;
        db("customers", "id", IndexKind::FullCss)
    };

    // The unsharded reference catalog.
    let mut base = Database::new();
    base.register(orders()?)?;
    base.register(customers()?)?;
    index_all(&mut |t, c, k| base.create_index(t, c, k))?;

    // The in-process sharded catalog.
    let mut local = ShardedDatabase::hash(4)?;
    local.register(orders()?, "cust")?;
    local.register(customers()?, "id")?;
    index_all(&mut |t, c, k| local.create_index(t, c, k))?;

    // The distributed catalog: 4 shard servers on loopback TCP, each
    // fronting an initially empty Database; the coordinator registers,
    // indexes, and queries through the wire protocol.
    let servers: Vec<ShardServer> = (0..4)
        .map(|_| ShardServer::spawn(Database::new()))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();
    let mut remote = ShardedDatabase::connect(HashPartitioner::new(4)?, &addrs)?;
    remote.register(orders()?, "cust")?;
    remote.register(customers()?, "id")?;
    index_all(&mut |t, c, k| remote.create_index(t, c, k))?;
    println!("distributed catalog: {} shards over TCP", remote.shards());
    for (s, addr) in addrs.iter().enumerate() {
        println!(
            "  shard {s} @ {addr}: {} order rows",
            remote.backend(s).rows("orders")?
        );
    }

    // An equality probe on the shard key routes to exactly one remote
    // shard; one round trip, identical bytes.
    let plan = remote.query("orders").filter(eq("cust", 17)).plan()?;
    println!("\n{}", plan.explain());
    let remote_hits = plan.execute(&remote)?;
    let base_hits = base.query("orders").filter(eq("cust", 17)).run()?;
    assert_eq!(remote_hits.rids(), base_hits.rids());
    println!("-> {} rows, identical over the wire", remote_hits.len());

    // Scatter-gather join + group over TCP, partials merged at the
    // gather barrier — against both in-process references.
    let base_groups = base
        .query("orders")
        .filter(between("amount", 1_000, 4_000))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()?
        .groups()
        .to_vec();
    let local_groups = local
        .query("orders")
        .filter(between("amount", 1_000, 4_000))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()?
        .groups()
        .to_vec();
    let remote_groups = remote
        .query("orders")
        .filter(between("amount", 1_000, 4_000))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()?
        .groups()
        .to_vec();
    assert_eq!(remote_groups, base_groups);
    assert_eq!(remote_groups, local_groups);
    println!("\nrevenue by region (unsharded == in-process == TCP):");
    for g in &remote_groups {
        println!("  {:>6}: {}", g.group.to_string(), g.value);
    }

    // Update the shard key itself: rows migrate between *remote*
    // shards, entirely over the wire.
    let new_keys: Vec<Value> = (0..n)
        .map(|i| Value::Int((i as i64 * 37 + 5) % n_customers))
        .collect();
    base.replace_column("orders", "cust", new_keys.clone())?;
    let report = remote.replace_column("orders", "cust", new_keys)?;
    assert!(report.repartitioned);
    println!("\nreplace_column(cust): re-partitioned across the wire");
    for (s, addr) in addrs.iter().enumerate() {
        println!(
            "  shard {s} @ {addr}: {} order rows",
            remote.backend(s).rows("orders")?
        );
    }
    let post = remote.query("orders").filter(eq("cust", 17)).run()?;
    assert_eq!(
        post.rids(),
        base.query("orders").filter(eq("cust", 17)).run()?.rids()
    );
    println!("-> post-migration queries still byte-identical");

    // Fault injection: kill one shard mid-flight. The coordinator
    // surfaces a typed transport error at the gather barrier.
    let mut servers = servers;
    servers.remove(2).kill();
    match remote
        .query("orders")
        .filter(between("amount", 0, 9_999))
        .run()
    {
        Err(MmdbError::Transport {
            endpoint, fault, ..
        }) => {
            println!("\nkilled shard 2 -> MmdbError::Transport ({fault:?} at {endpoint})");
        }
        other => panic!("expected a transport error, got {other:?}"),
    }
    for server in servers {
        server.shutdown();
    }
    println!("remaining servers drained and joined; done.");
    Ok(())
}
