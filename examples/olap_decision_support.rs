//! An OLAP mini-warehouse on the mmdb substrate (§2 of the paper).
//!
//! Builds a small star schema (orders ⋈ customers), domain-encodes the
//! columns, sorts RID lists, and runs the paper's three index consumers —
//! point selection, range selection, and indexed nested-loop join — with a
//! CSS-tree as the inner index, then applies a batch update and rebuilds.
//!
//! ```sh
//! cargo run --release --example olap_decision_support
//! ```

use ccindex::db::domain::Value;
use ccindex::db::{
    apply_batch, build_index, build_ordered_index, group_aggregate, indexed_nested_loop_join,
    point_select, range_select, AggFn, IndexKind, RidList, TableBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Dimension: 10 000 customers across 8 regions.
    let regions = ["north", "south", "east", "west", "nw", "ne", "sw", "se"];
    let n_customers = 10_000i64;
    let customers = TableBuilder::new("customers")
        .int_column("id", 0..n_customers)
        .str_column(
            "region",
            (0..n_customers).map(|_| regions[rng.gen_range(0..regions.len())]),
        )
        .build();

    // Fact: 200 000 orders referencing customers, with amounts.
    let n_orders = 200_000usize;
    let orders = TableBuilder::new("orders")
        .int_column("cust", (0..n_orders).map(|_| rng.gen_range(0..n_customers)))
        .int_column("amount", (0..n_orders).map(|_| rng.gen_range(1..10_000)))
        .build();

    // Sorted RID list + CSS-tree on orders.amount (the paper's §2.2 setup).
    let amount = orders.column("amount").expect("column");
    let amount_rids = RidList::for_column(amount);
    let amount_index = build_ordered_index(IndexKind::FullCss, amount_rids.keys());

    // Point selection: orders of exactly 4999.
    let exact = point_select(
        amount,
        &amount_rids,
        amount_index.as_ref(),
        &Value::Int(4999),
    );
    println!("orders with amount = 4999: {}", exact.len());

    // Range selection: big-ticket orders.
    let big = range_select(
        amount,
        &amount_rids,
        amount_index.as_ref(),
        &Value::Int(9_000),
        &Value::Int(10_000),
    );
    println!("orders with amount in [9000, 10000]: {}", big.len());
    // Verify against a scan.
    let scan = (0..orders.rows() as u32)
        .filter(|&r| matches!(amount.value(r), Value::Int(v) if (9_000..=10_000).contains(v)))
        .count();
    assert_eq!(big.len(), scan, "index agrees with full scan");

    // Indexed nested-loop join: orders ⋈ customers on customer id, with a
    // CSS-tree over the inner (customers.id) RID list.
    let cust_id = customers.column("id").expect("column");
    let cust_rids = RidList::for_column(cust_id);
    let cust_index = build_index(IndexKind::FullCss, cust_rids.keys());
    let joined = indexed_nested_loop_join(
        orders.column("cust").expect("column"),
        cust_id,
        &cust_rids,
        cust_index.as_ref(),
    );
    assert_eq!(
        joined.len(),
        n_orders,
        "every order has exactly one customer"
    );
    println!("orders ⋈ customers produced {} rows", joined.len());

    // Aggregate the join: order count per region (a small GROUP BY).
    let region = customers.column("region").expect("column");
    let mut counts = std::collections::BTreeMap::<String, usize>::new();
    for j in &joined {
        let r = region.value(j.inner_rid).to_string();
        *counts.entry(r).or_default() += 1;
    }
    println!("orders per region: {counts:?}");

    // Grouped aggregation over the sorted RID list: total revenue per
    // customer id band (the sorted order makes grouping a linear pass).
    let cust_col = orders.column("cust").expect("column");
    let cust_rids_orders = RidList::for_column(cust_col);
    let revenue = group_aggregate(
        cust_col,
        &cust_rids_orders,
        Some(orders.column("amount").expect("column")),
        AggFn::Sum,
    );
    let top = revenue.iter().max_by_key(|g| g.value).expect("non-empty");
    println!(
        "{} customer groups; top customer {} with revenue {}",
        revenue.len(),
        top.group,
        top.value
    );

    // The OLAP batch-update cycle (§2.3): merge a batch, rebuild the index.
    let inserts: Vec<u32> = vec![0, 1, 2]; // three tiny new amounts (domain IDs)
    let result = apply_batch(amount_rids.keys(), &inserts, &[], IndexKind::FullCss);
    println!(
        "batch of {} inserts merged in {:?}, CSS-tree rebuilt in {:?} over {} keys",
        inserts.len(),
        result.merge_time,
        result.rebuild_time,
        result.keys.len()
    );
}
