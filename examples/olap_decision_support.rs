//! An OLAP mini-warehouse on the `Database` engine (§2 of the paper).
//!
//! Builds a small star schema (orders ⋈ customers), registers it in a
//! catalog that owns the RID lists and indexes, and runs the paper's
//! three index consumers as *composable queries* — point selection,
//! range selection, multi-predicate conjunction, indexed nested-loop
//! join, and a join-then-group-by pipeline — then applies a batch update
//! through the catalog's rebuild cycle.
//!
//! ```sh
//! cargo run --release --example olap_decision_support
//! ```

use ccindex::db::domain::Value;
use ccindex::db::{between, count, eq, on, sum, Database, IndexKind, MmdbError, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), MmdbError> {
    let mut rng = StdRng::seed_from_u64(7);

    // Dimension: 10 000 customers across 8 regions.
    let regions = ["north", "south", "east", "west", "nw", "ne", "sw", "se"];
    let n_customers = 10_000i64;
    let customers = TableBuilder::new("customers")
        .int_column("id", 0..n_customers)
        .str_column(
            "region",
            (0..n_customers).map(|_| regions[rng.gen_range(0..regions.len())]),
        )
        .build()?;

    // Fact: 200 000 orders referencing customers, with amounts.
    let n_orders = 200_000usize;
    let orders = TableBuilder::new("orders")
        .int_column("cust", (0..n_orders).map(|_| rng.gen_range(0..n_customers)))
        .int_column("amount", (0..n_orders).map(|_| rng.gen_range(1..10_000)))
        .build()?;

    // The catalog owns the access paths: a CSS-tree for ranges on the
    // measure, a hash index for point probes on it, and a CSS-tree on
    // the join column (§2.2's setup, held by the engine instead of
    // threaded by hand).
    let mut db = Database::new();
    db.register(customers)?;
    db.register(orders)?;
    db.create_index("orders", "amount", IndexKind::FullCss)?;
    db.create_index("orders", "amount", IndexKind::Hash)?;
    db.create_index("customers", "id", IndexKind::FullCss)?;

    // Point selection: orders of exactly 4999 (planner picks the hash).
    let exact = db.query("orders").filter(eq("amount", 4999)).run()?;
    println!("orders with amount = 4999: {}", exact.len());

    // Range selection: big-ticket orders (planner picks the CSS-tree).
    let big = db
        .query("orders")
        .filter(between("amount", 9_000, 10_000))
        .run()?;
    println!("orders with amount in [9000, 10000]: {}", big.len());
    // Verify against a scan.
    let amount = db.table("orders")?.column("amount").expect("column");
    let scan = (0..db.table("orders")?.rows() as u32)
        .filter(|&r| matches!(amount.value(r), Value::Int(v) if (9_000..=10_000).contains(v)))
        .count();
    assert_eq!(big.len(), scan, "index agrees with full scan");

    // Multi-predicate conjunction: mid-range amounts that are also one
    // exact value — combined by sorted RID-set intersection.
    let both = db
        .query("orders")
        .filter(between("amount", 4_000, 6_000))
        .filter(eq("amount", 4999))
        .run()?;
    assert_eq!(both.len(), exact.len());
    println!("conjunction [4000,6000] ∧ (= 4999): {} orders", both.len());

    // Indexed nested-loop join: orders ⋈ customers on customer id. The
    // plan is inspectable before it runs.
    let join_query = db.query("orders").join("customers", on("cust", "id"));
    println!("plan:\n{}", join_query.plan()?.explain());
    let joined = join_query.run()?;
    assert_eq!(
        joined.len(),
        n_orders,
        "every order has exactly one customer"
    );
    println!("orders ⋈ customers produced {} rows", joined.len());

    // The flagship pipeline: select, join, aggregate — order count and
    // revenue per region, with the group column on the inner table and
    // the measure on the outer.
    let counts = db
        .query("orders")
        .join("customers", on("cust", "id"))
        .group_by("region", count())
        .run()?;
    println!(
        "orders per region: {:?}",
        counts
            .groups()
            .iter()
            .map(|g| (g.group.to_string(), g.value))
            .collect::<Vec<_>>()
    );
    let revenue = db
        .query("orders")
        .filter(between("amount", 5_000, 10_000))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()?;
    let top = revenue
        .groups()
        .iter()
        .max_by_key(|g| g.value)
        .expect("non-empty");
    println!(
        "big-ticket revenue per region: top {} with {}",
        top.group, top.value
    );

    // Grouped aggregation without a join: total revenue per customer.
    let per_customer = db.query("orders").group_by("cust", sum("amount")).run()?;
    let best = per_customer
        .groups()
        .iter()
        .max_by_key(|g| g.value)
        .expect("non-empty");
    println!(
        "{} customer groups; top customer {} with revenue {}",
        per_customer.len(),
        best.group,
        best.value
    );

    // The OLAP batch-update cycle (§2.3), catalog-owned: replace the
    // measure column wholesale (here: a 10% price bump on every order),
    // and the engine re-sorts the RID list and rebuilds both indexes.
    let bumped: Vec<Value> = (0..db.table("orders")?.rows() as u32)
        .map(|r| match amount.value(r) {
            Value::Int(v) => Value::Int(v * 11 / 10),
            other => other.clone(),
        })
        .collect();
    let report = db.replace_column("orders", "amount", bumped)?;
    println!(
        "batch update: RID list re-sorted in {:?}, {} indexes rebuilt ({:?})",
        report.sort_time,
        report.rebuilds.len(),
        report
            .rebuilds
            .iter()
            .map(|(k, d)| format!("{k:?} in {d:?}"))
            .collect::<Vec<_>>()
    );
    // The fresh indexes answer over the new values.
    let big_after = db
        .query("orders")
        .filter(between("amount", 9_900, 11_000))
        .run()?;
    println!(
        "after the 10% bump, orders in [9900, 11000]: {}",
        big_after.len()
    );
    Ok(())
}
