//! Cross-wire query tracing: one latency tree spanning the client and
//! every shard server it scattered to.
//!
//! Spawns two `ShardServer`s on loopback TCP, each holding half of an
//! orders table, then runs a traced range query against both: the
//! client stamps its span id into each request frame, every server
//! answers with its own decode/execute timing breakdown, and the
//! subtrees graft under the client's root span — one cross-process
//! latency report with no clock synchronisation (each side reports only
//! durations it measured itself). Finishes by scraping a server's
//! metric registry over the wire.
//!
//! ```sh
//! cargo run --release --example query_tracing
//! ```

use ccindex::prelude::*;
use ccindex::wire::Spec;

fn main() -> Result<(), MmdbError> {
    let n = 40_000usize;

    // Two shard servers, each fronting half the orders (split by row
    // parity, so both shards see every amount range).
    let mut servers = Vec::new();
    let mut shards = Vec::new();
    for shard_id in 0..2usize {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("orders")
                .int_column(
                    "amount",
                    (0..n)
                        .filter(|i| i % 2 == shard_id)
                        .map(|i| (i as i64 * 17) % 10_000),
                )
                .build()?,
        )?;
        db.create_index("orders", "amount", IndexKind::FullCss)?;
        let server = ShardServer::spawn(db)?;
        let shard = RemoteShard::connect(server.addr())?;
        servers.push(server);
        shards.push(shard);
    }

    // One traced scatter: the same spec to every shard, each RPC a
    // child of the client's root span.
    let spec = Spec {
        table: "orders".into(),
        filters: vec![between("amount", 100, 120)],
        ..Spec::default()
    };
    let mut span = Span::root("scatter");
    let mut hits = 0usize;
    for shard in &shards {
        match shard.run_spec_traced(&spec, &mut span)? {
            ResultRows::Rids(rids) => hits += rids.len(),
            other => panic!("expected rids, got {other:?}"),
        }
    }
    let tree = span.finish();

    println!("matched {hits} rows across {} shards\n", shards.len());
    println!("{}", tree.render());

    // The tree really is cross-process: both RPCs carry the server-side
    // breakdown the wire brought back.
    assert_eq!(tree.children.len(), shards.len());
    for rpc in &tree.children {
        assert!(rpc.find("decode").is_some(), "server breakdown missing");
        assert!(rpc.find("execute").is_some(), "server breakdown missing");
    }

    // Every server also exposes its metric registry for scraping.
    let scrape = shards[0].stats()?;
    assert!(scrape.contains("server.execute.ns"));
    println!("shard 0 registry: {scrape}");

    for server in servers {
        server.shutdown();
    }
    Ok(())
}
