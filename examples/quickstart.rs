//! Quickstart: build a CSS-tree over a sorted array and look things up.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ccindex::prelude::*;

fn main() {
    // The paper's setting: a sorted array of 4-byte keys (e.g. a RID list
    // ordered by some attribute). One million distinct random keys:
    let keys: Vec<u32> = KeySetBuilder::new(1_000_000).build();

    // A full CSS-tree with 16 keys per node — one 64-byte cache line.
    // The directory is pointer-free: children are found by arithmetic.
    let css = FullCssTree::<u32, 16>::build(&keys);

    // Point lookups return the key's position in the sorted array.
    let probe = keys[777_777];
    assert_eq!(css.search(probe), Some(777_777));
    println!("search({probe}) -> {:?}", css.search(probe));

    // Misses are None; lower_bound gives the insertion point.
    let absent = probe + 1;
    if !keys.contains(&absent) {
        assert_eq!(css.search(absent), None);
        println!(
            "search({absent}) -> None (lower_bound = {})",
            css.lower_bound(absent)
        );
    }

    // Range query: positions of all keys in [lo, hi].
    let (lo, hi) = (keys[1000], keys[1010]);
    let (start, end) = css.key_range(lo, hi);
    assert_eq!((start, end), (1000, 1011));
    println!("keys in [{lo}, {hi}] occupy positions [{start}, {end})");

    // The whole index costs ~1.7% of the data it indexes:
    let space = css.space();
    println!(
        "directory: {} bytes over {} bytes of keys ({:.2}% overhead, {} levels)",
        space.indirect_bytes,
        keys.len() * 4,
        100.0 * space.indirect_bytes as f64 / (keys.len() * 4) as f64,
        css.stats().levels,
    );

    // The level variant trades a slot per node for exactly log2(n)
    // comparisons per lookup; same API.
    let level = LevelCssTree::<u32, 16>::build(&keys);
    assert_eq!(level.search(probe), Some(777_777));
    println!(
        "level CSS-tree agrees; its directory is {} bytes",
        level.space().indirect_bytes
    );
}
