//! Sharded scatter-gather: update-then-query across a partitioned
//! catalog.
//!
//! Builds the same orders/customers workload twice — once in a plain
//! `Database`, once hash-partitioned across 4 shards — applies a batch
//! update (splitting it by shard), then replaces the shard-key column
//! itself (migrating rows between shards), and shows every query
//! answering byte-identically throughout, with the shard routing
//! visible in `explain()`.
//!
//! ```sh
//! cargo run --release --example sharded_scatter_gather
//! ```

use ccindex::db::Value;
use ccindex::prelude::*;

fn main() -> Result<(), MmdbError> {
    let n = 40_000usize;
    let n_customers = 1_000i64;
    let orders = || {
        TableBuilder::new("orders")
            .int_column("cust", (0..n).map(|i| (i as i64 * 131) % n_customers))
            .int_column("amount", (0..n).map(|i| (i as i64 * 17) % 10_000))
            .build()
    };
    let customers = || {
        TableBuilder::new("customers")
            .int_column("id", 0..n_customers)
            .str_column(
                "region",
                (0..n_customers as usize).map(|i| ["north", "south", "east", "west"][i % 4]),
            )
            .build()
    };

    // The unsharded reference catalog...
    let mut base = Database::new();
    base.register(orders()?)?;
    base.register(customers()?)?;
    base.create_index("orders", "cust", IndexKind::Hash)?;
    base.create_index("orders", "cust", IndexKind::FullCss)?;
    base.create_index("orders", "amount", IndexKind::FullCss)?;
    base.create_index("customers", "id", IndexKind::FullCss)?;

    // ... and the same data hash-partitioned across 4 shards by 'cust'.
    let mut db = ShardedDatabase::hash(4)?;
    db.register(orders()?, "cust")?;
    db.register(customers()?, "id")?;
    db.create_index("orders", "cust", IndexKind::Hash)?;
    db.create_index("orders", "cust", IndexKind::FullCss)?;
    db.create_index("orders", "amount", IndexKind::FullCss)?;
    db.create_index("customers", "id", IndexKind::FullCss)?;
    println!("catalog: {} shards ({})", db.shards(), db.partitioner());
    for s in 0..db.shards() {
        println!(
            "  shard {s}: {} order rows",
            db.shard(s).table("orders")?.rows()
        );
    }

    // An equality probe on the shard key routes to exactly one shard.
    let plan = db.query("orders").filter(eq("cust", 17)).plan()?;
    println!("\n{}", plan.explain());
    let sharded_hits = plan.execute(&db)?;
    let base_hits = base.query("orders").filter(eq("cust", 17)).run()?;
    assert_eq!(sharded_hits.rids(), base_hits.rids());
    println!(
        "-> {} rows, identical to the unsharded catalog",
        sharded_hits.len()
    );

    // Update: replace the amount column wholesale. The sharded catalog
    // splits the batch by owning shard and rebuilds per shard.
    let new_amounts: Vec<Value> = (0..n)
        .map(|i| Value::Int((i as i64 * 23) % 5_000))
        .collect();
    base.replace_column("orders", "amount", new_amounts.clone())?;
    let report = db.replace_column("orders", "amount", new_amounts)?;
    println!(
        "\nreplace_column(amount): split across {} shard rebuild cycles",
        report.per_shard.len()
    );

    // Query after the update: scatter-gather join + group, partials
    // merged at the gather barrier.
    let pipeline = |q_base: &Database| -> Result<Vec<ccindex::db::GroupRow>, MmdbError> {
        Ok(q_base
            .query("orders")
            .filter(between("amount", 1_000, 4_000))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()?
            .groups()
            .to_vec())
    };
    let base_groups = pipeline(&base)?;
    let plan = db
        .query("orders")
        .filter(between("amount", 1_000, 4_000))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .plan()?;
    println!("\n{}", plan.explain());
    let sharded_groups = plan.execute(&db)?.groups().to_vec();
    assert_eq!(sharded_groups, base_groups);
    println!("-> revenue by region (identical to unsharded):");
    for g in &sharded_groups {
        println!("   {:>6}: {}", g.group.to_string(), g.value);
    }

    // Update the shard key itself: rows migrate between shards.
    let new_keys: Vec<Value> = (0..n)
        .map(|i| Value::Int((i as i64 * 37 + 5) % n_customers))
        .collect();
    base.replace_column("orders", "cust", new_keys.clone())?;
    let report = db.replace_column("orders", "cust", new_keys)?;
    assert!(report.repartitioned);
    println!("\nreplace_column(cust): re-partitioned the catalog");
    for s in 0..db.shards() {
        println!(
            "  shard {s}: {} order rows",
            db.shard(s).table("orders")?.rows()
        );
    }
    assert_eq!(pipeline(&base)?, {
        db.query("orders")
            .filter(between("amount", 1_000, 4_000))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()?
            .groups()
            .to_vec()
    });
    println!("-> post-migration queries still byte-identical");
    Ok(())
}
