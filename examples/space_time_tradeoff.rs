//! The Fig. 2 / Fig. 14 story in miniature: measure every method's
//! (space, time) point over the same key set and print the frontier.
//!
//! ```sh
//! cargo run --release --example space_time_tradeoff
//! ```

use ccindex::db::{build_index, IndexKind};
use ccindex::gen::{KeySetBuilder, LookupStream};

fn main() {
    let n = 2_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = ccindex::common::SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, 100_000, 11);

    println!(
        "{:>22} {:>14} {:>16} {:>10}",
        "method", "time (ms)", "space (bytes)", "ordered"
    );
    let mut rows = Vec::new();
    for kind in IndexKind::ALL {
        let index = build_index(kind, &arr);
        let start = std::time::Instant::now();
        let mut found = 0usize;
        for &p in stream.probes() {
            if index.search(p).is_some() {
                found += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(found, stream.len());
        rows.push((
            index.name().to_string(),
            elapsed,
            index.space().direct_bytes,
            kind.is_ordered(),
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, ms, bytes, ordered) in &rows {
        println!(
            "{:>22} {:>14.2} {:>16} {:>10}",
            name,
            ms,
            bytes,
            if *ordered { "Y" } else { "N" }
        );
    }

    // The paper's conclusions, checked live:
    let get = |n: &str| rows.iter().find(|r| r.0 == n).expect("present");
    let css = get("full CSS-tree");
    let bin = get("array binary search");
    let hash = get("hash");
    println!();
    println!(
        "CSS-tree vs binary search: {:.2}x faster with {:.1}% space overhead",
        bin.1 / css.1,
        100.0 * css.2 as f64 / (n * 4) as f64
    );
    println!(
        "hash vs CSS-tree: {:.2}x faster but {:.1}x the space",
        css.1 / hash.1,
        hash.2 as f64 / css.2 as f64
    );
}
