//! # ccindex — Cache Conscious Indexing for Decision-Support in Main Memory
//!
//! A production-quality Rust reproduction of Rao & Ross (Columbia TR
//! CUCS-019-98 / VLDB 1999): **Cache-Sensitive Search Trees** and the full
//! set of competing main-memory index structures the paper evaluates, plus
//! the analytical models, a cache simulator standing in for the paper's
//! 1998 hardware, and a main-memory OLAP database substrate.
//!
//! ## Quick start
//!
//! ```
//! use ccindex::prelude::*;
//!
//! // A sorted array of distinct keys (the paper's setting: a sorted
//! // RID list ordered by some attribute).
//! let keys: Vec<u32> = (0..100_000u32).map(|i| i * 2).collect();
//!
//! // Build a full CSS-tree with 16 keys per node (64-byte cache lines).
//! let css = FullCssTree::<u32, 16>::build(&keys);
//! assert_eq!(css.search(40_000), Some(20_000));
//! assert_eq!(css.search(40_001), None);
//!
//! // Every method implements the same traits.
//! let idx: &dyn OrderedIndex<u32> = &css;
//! assert_eq!(idx.lower_bound(41), 21);
//! let space = idx.space();
//! assert!(space.indirect_bytes < keys.len() * 4 / 10); // < 10% overhead
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`css`] | `css-tree` | Full & level CSS-trees (the contribution) |
//! | [`sorted`] | `sorted-search` | Binary & interpolation search |
//! | [`bst`] | `bst-index` | Pointer-based balanced BST |
//! | [`ttree`] | `ttree` | T-tree (improved LC86b variant) |
//! | [`bplus`] | `bplus` | Bulk-loaded B+-tree |
//! | [`hash`] | `hashindex` | Chained bucket hash |
//! | [`sim`] | `cachesim` | Cache simulator + 1998 machine models |
//! | [`model`] | `analysis` | §5 analytical time/space models |
//! | [`db`] | `mmdb` | Main-memory OLAP database substrate |
//! | [`store`] | `ccindex-store` | Versioned, checksummed paged on-disk container |
//! | [`shard`] | `ccindex-shard` | Sharded catalog with scatter-gather execution (local or remote shards) |
//! | [`serve`] | `ccindex-serve` | Batch-formation serving front-end + TCP shard server |
//! | [`wire`] | `ccindex-wire` | Versioned, checksummed shard wire protocol |
//! | [`obs`] | `ccindex-obs` | Metrics registry, latency histograms, query tracing |
//! | [`gen`] | `workload` | Key/lookup/update generators |
//! | [`parallel`] | `ccindex-parallel` | Scoped worker pool for partitioned execution |
//! | [`common`] | `ccindex-common` | Shared traits |

#![deny(unsafe_op_in_unsafe_fn)]

pub use analysis as model;
pub use bst_index as bst;
pub use cachesim as sim;
pub use ccindex_common as common;
pub use ccindex_obs as obs;
pub use ccindex_parallel as parallel;
pub use ccindex_serve as serve;
pub use ccindex_shard as shard;
pub use ccindex_store as store;
pub use ccindex_wire as wire;
pub use css_tree as css;
pub use hashindex as hash;
pub use mmdb as db;
pub use sorted_search as sorted;
pub use workload as gen;
pub use {bplus, ttree};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::common::{
        AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex,
        SortedArray, SpaceReport, CACHE_LINE_BYTES, DEFAULT_BATCH_LANES,
    };
    pub use crate::css::{CssVariant, DynCssTree, FullCssTree, LevelCssTree};
    pub use crate::db::{
        between, build_index, build_ordered_index, count, eq, indexed_nested_loop_join, max, min,
        on, point_select, point_select_many, range_select, range_select_many, sum, Agg, Database,
        DatabaseHandle, Domain, ExecOptions, IndexKind, MmdbError, ResultRows, RidList, Snapshot,
        StorageFault, Table, TableBuilder, Value,
    };
    pub use crate::gen::{KeyDistribution, KeySetBuilder, LookupStream};
    pub use crate::hash::HashIndex;
    pub use crate::model::Params;
    pub use crate::obs::{Counter, Gauge, Histogram, Registry, Span, SpanNode};
    pub use crate::parallel::{BlockingQueue, WorkerPool};
    pub use crate::serve::{
        BatchServer, QuerySpec, Request, ServeEngine, ServeOptions, ServeSource, ShardServer,
        SnapshotInfo,
    };
    pub use crate::shard::{
        HashPartitioner, LocalShard, Partitioner, RangePartitioner, RemoteShard, ShardBackend,
        ShardedDatabase,
    };
    pub use crate::sim::{CacheHierarchy, Machine, SimTracer};
    pub use crate::sorted::{BinarySearch, InterpolationSearch};
    pub use bplus::BPlusTree;
    pub use bst_index::BinaryTreeIndex;
    pub use ttree::TTree;
}
