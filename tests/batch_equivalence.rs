//! Batch/sequential equivalence: the batched entry points of every index
//! must be observationally identical to their per-probe counterparts —
//! over arbitrary key multisets, all lane counts, every standard node
//! size, both CSS variants, and the degenerate shapes (empty trees, empty
//! batches, single keys, ragged tails).

use ccindex::common::{CountingTracer, OrderedIndex, SearchIndex, SortedArray};
use ccindex::css::{CssVariant, DynCssTree, STANDARD_NODE_SIZES};
use ccindex::db::{build_index, build_ordered_index, IndexKind};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved lower bounds equal per-probe lower bounds for every
    /// standard node size, both variants, across lane counts (including
    /// lanes of 1, lanes beyond the batch size, and non-powers).
    #[test]
    fn interleaved_matches_per_probe_all_sizes_and_lanes(
        mut keys in vec(0u32..4_000, 0..400),
        probes in vec(0u32..4_200, 0..120),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        let expected: Vec<usize> = probes
            .iter()
            .map(|&p| keys.partition_point(|&k| k < p))
            .collect();
        for &m in STANDARD_NODE_SIZES {
            for variant in [CssVariant::Full, CssVariant::Level] {
                let t = DynCssTree::build(variant, m, arr.clone());
                for lanes in [1usize, 2, 3, 8, 13, 1000] {
                    prop_assert_eq!(
                        t.lower_bound_batch_lanes(&probes, lanes),
                        expected.clone(),
                        "{:?} m={} lanes={}",
                        variant, m, lanes
                    );
                }
                prop_assert_eq!(
                    t.lower_bound_batch(&probes),
                    expected.clone(),
                    "{:?} m={} trait path",
                    variant, m
                );
            }
        }
        // Generic fallback sizes, including the m = 24 bump.
        for m in [3usize, 7, 24] {
            let t = DynCssTree::build(CssVariant::Full, m, arr.clone());
            for lanes in [1usize, 5, 64] {
                prop_assert_eq!(
                    t.lower_bound_batch_lanes(&probes, lanes),
                    expected.clone(),
                    "generic m={} lanes={}",
                    m, lanes
                );
            }
        }
    }

    /// Every index kind's `search_batch` (default or interleaved
    /// override) equals the per-probe `search`, and the ordered kinds'
    /// `lower_bound_batch` equals per-probe `lower_bound`.
    #[test]
    fn every_index_kind_batches_like_it_searches(
        mut keys in vec(0u32..3_000, 0..500),
        probes in vec(0u32..3_200, 0..80),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        for kind in IndexKind::ALL {
            let idx = build_index(kind, &arr);
            let expected: Vec<Option<usize>> =
                probes.iter().map(|&p| idx.search(p)).collect();
            prop_assert_eq!(idx.search_batch(&probes), expected, "{:?}", kind);
        }
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, &arr);
            let expected: Vec<usize> =
                probes.iter().map(|&p| idx.lower_bound(p)).collect();
            prop_assert_eq!(idx.lower_bound_batch(&probes), expected, "{:?}", kind);
        }
    }

    /// Traced batch calls return the same answers as untraced ones and
    /// perform the same total work (reads/compares/descents) as the
    /// traced sequential protocol — interleaving reorders accesses, it
    /// must never add or drop any.
    #[test]
    fn traced_batches_agree_and_do_identical_work(
        mut keys in vec(0u32..2_000, 1..400),
        probes in vec(0u32..2_100, 1..60),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, &arr);
            let mut seq = CountingTracer::new();
            let expected: Vec<usize> = probes
                .iter()
                .map(|&p| idx.lower_bound_traced(p, &mut seq))
                .collect();
            let mut bat = CountingTracer::new();
            prop_assert_eq!(
                idx.lower_bound_batch_traced(&probes, &mut bat),
                expected,
                "{:?}",
                kind
            );
            prop_assert_eq!(bat.reads, seq.reads, "{:?} reads", kind);
            prop_assert_eq!(bat.bytes_read, seq.bytes_read, "{:?} bytes", kind);
            prop_assert_eq!(bat.compares, seq.compares, "{:?} compares", kind);
            prop_assert_eq!(bat.descends, seq.descends, "{:?} descends", kind);
        }
    }
}

/// Deterministic degenerate shapes that property generators hit rarely:
/// empty trees, empty batches, one key, one probe, batches smaller than a
/// lane chunk, exact lane multiples and one-over sizes.
#[test]
fn degenerate_batches() {
    for &m in STANDARD_NODE_SIZES {
        for variant in [CssVariant::Full, CssVariant::Level] {
            let empty = DynCssTree::build(variant, m, SortedArray::from_slice(&[]));
            assert!(empty.lower_bound_batch_lanes(&[], 8).is_empty());
            assert_eq!(empty.lower_bound_batch_lanes(&[7], 8), vec![0]);
            assert_eq!(empty.search_batch(&[7]), vec![None]);

            let one = DynCssTree::build(variant, m, SortedArray::from_slice(&[5u32]));
            assert_eq!(one.lower_bound_batch_lanes(&[4, 5, 6], 2), vec![0, 0, 1]);
            assert_eq!(one.search_batch(&[4, 5, 6]), vec![None, Some(0), None]);
        }
    }
    // Batch lengths straddling the lane chunking.
    let keys: Vec<u32> = (0..1_000u32).map(|i| i * 2).collect();
    let t = DynCssTree::build(CssVariant::Full, 16, SortedArray::from_slice(&keys));
    for len in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
        let probes: Vec<u32> = (0..len as u32).map(|i| i * 31 % 2_100).collect();
        let expected: Vec<usize> = probes
            .iter()
            .map(|&p| keys.partition_point(|&k| k < p))
            .collect();
        assert_eq!(t.lower_bound_batch(&probes), expected, "len={len}");
    }
}
