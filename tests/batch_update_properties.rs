//! Property tests for the OLAP batch-update merge (`merge_batch`): the
//! production merge must agree with a naive multiset model over arbitrary
//! sorted batches — including delete keys absent from the base array (the
//! cursor-stall bug this suite regression-guards), duplicate base keys,
//! and inserts equal to deletes (which, per the documented semantics,
//! deletes never cancel: deletes target pre-batch occurrences only).

use ccindex::common::SortedArray;
use ccindex::db::{apply_batch, merge_batch, IndexKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The specification: deletes each remove one occurrence from the *base*
/// multiset (no-ops when none remains), then the inserts are added.
fn model_merge(base: &[u32], inserts: &[u32], deletes: &[u32]) -> Vec<u32> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &k in base {
        *counts.entry(k).or_insert(0) += 1;
    }
    for &d in deletes {
        if let Some(c) = counts.get_mut(&d) {
            if *c > 0 {
                *c -= 1;
            }
        }
    }
    let mut out: Vec<u32> = counts
        .into_iter()
        .flat_map(|(k, c)| std::iter::repeat_n(k, c))
        .collect();
    out.extend_from_slice(inserts);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Narrow value range (0..40) so duplicate base keys, absent delete
    /// keys, and insert/delete collisions all occur constantly.
    #[test]
    fn merge_agrees_with_multiset_model(
        mut base in vec(0u32..40, 0..200),
        mut inserts in vec(0u32..40, 0..60),
        mut deletes in vec(0u32..40, 0..60),
    ) {
        base.sort_unstable();
        inserts.sort_unstable();
        deletes.sort_unstable();
        let keys = SortedArray::from_slice(&base);
        let (merged, _) = merge_batch(&keys, &inserts, &deletes);
        let expect = model_merge(&base, &inserts, &deletes);
        prop_assert_eq!(merged.as_slice(), expect.as_slice());
    }

    /// Deletes drawn from outside the base range are all absent: the
    /// merge must leave the base + inserts untouched, regardless of how
    /// the stale keys interleave with live ones.
    #[test]
    fn absent_deletes_are_noops(
        mut base in vec(100u32..200, 1..100),
        mut deletes in vec(0u32..100, 1..50),
    ) {
        base.sort_unstable();
        deletes.sort_unstable();
        let keys = SortedArray::from_slice(&base);
        let (merged, _) = merge_batch(&keys, &[], &deletes);
        prop_assert_eq!(merged.as_slice(), base.as_slice());
    }

    /// The merged array stays sorted and the rebuilt index of a random
    /// kind answers over exactly the merged keys.
    #[test]
    fn rebuild_cycle_serves_the_merged_array(
        mut base in vec(0u32..60, 0..120),
        mut inserts in vec(0u32..60, 0..30),
        mut deletes in vec(0u32..60, 0..30),
        kind_pick in 0usize..8,
    ) {
        base.sort_unstable();
        inserts.sort_unstable();
        deletes.sort_unstable();
        let keys = SortedArray::from_slice(&base);
        let kind = IndexKind::ALL[kind_pick];
        let r = apply_batch(&keys, &inserts, &deletes, kind);
        let expect = model_merge(&base, &inserts, &deletes);
        prop_assert_eq!(r.keys.as_slice(), expect.as_slice());
        prop_assert_eq!(r.index.len(), expect.len());
        // Every surviving key is found at its leftmost position; every
        // probe outside the merged set misses.
        for probe in 0u32..60 {
            let expected = if expect.contains(&probe) {
                Some(expect.partition_point(|&k| k < probe))
            } else {
                None
            };
            prop_assert_eq!(r.index.search(probe), expected, "{:?} probe {}", kind, probe);
        }
    }
}
