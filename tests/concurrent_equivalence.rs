//! Snapshot-catalog equivalence under concurrency: reader threads race
//! a writer committing generations through `replace_column` (including
//! shard-key replacements that re-partition the sharded catalogs) and
//! the `rebuild_column` batch-update cycle. Every answer a reader gets
//! must be **byte-identical** to the answers of the committed generation
//! it pinned — never a torn mix of two generations — across the
//! unsharded `Database` and 4-shard catalogs under both partitioners.
//!
//! The writer's op schedule is deterministic and each op commits exactly
//! one generation, so a reader can map the generation number of its
//! pinned snapshot to the exact value sets that generation must serve.
//! CI re-runs this suite with `CCINDEX_WRITER_COMMITS` raised (and
//! `CCINDEX_THREADS=8`) to lengthen the race window.

use ccindex::db::domain::Value;
use ccindex::db::{between, eq, on, sum, Database, IndexKind, ResultRows, TableBuilder};
use ccindex::shard::{HashPartitioner, Partitioner, RangePartitioner, ShardedDatabase};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const ROWS: usize = 240;
const CUSTOMERS: usize = 40;
const READERS: usize = 4;

/// One committed generation's worth of work. `Amount` and `Cust` replace
/// a column wholesale (non-key and shard-key respectively — the latter
/// re-partitions the sharded catalogs); `Rebuild` runs the batch-update
/// rebuild cycle with unchanged values, committing a generation whose
/// answers equal its predecessor's.
#[derive(Clone, Copy)]
enum Op {
    Amount(usize),
    Cust(usize),
    Rebuild,
}

/// How many `Amount` commits the writer makes — `CCINDEX_WRITER_COMMITS`
/// lets CI lengthen the schedule without touching the test.
fn writer_commits() -> usize {
    std::env::var("CCINDEX_WRITER_COMMITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(6)
}

fn schedule(commits: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for k in 1..=commits {
        ops.push(Op::Amount(k));
        ops.push(Op::Rebuild);
        if k % 3 == 0 {
            ops.push(Op::Cust(k));
        }
    }
    ops
}

/// The `(amount_set, cust_set)` value sets committed after the first `d`
/// ops, for every `d` in `0..=ops.len()` — the map a reader uses to turn
/// a pinned generation number into the answers it must serve.
fn states_after(ops: &[Op]) -> Vec<(usize, usize)> {
    let mut states = vec![(0usize, 0usize)];
    let (mut a, mut c) = (0usize, 0usize);
    for op in ops {
        match *op {
            Op::Amount(k) => a = k,
            Op::Cust(k) => c = k,
            Op::Rebuild => {}
        }
        states.push((a, c));
    }
    states
}

fn amount_of(i: usize, set: usize) -> i64 {
    (i as i64) * (3 + 2 * set as i64) % 500
}

fn cust_of(i: usize, set: usize) -> i64 {
    ((i as i64) * 13 + 7 * set as i64) % CUSTOMERS as i64
}

fn amount_values(set: usize) -> Vec<Value> {
    (0..ROWS).map(|i| Value::Int(amount_of(i, set))).collect()
}

fn cust_values(set: usize) -> Vec<Value> {
    (0..ROWS).map(|i| Value::Int(cust_of(i, set))).collect()
}

fn sales_at(a: usize, c: usize) -> ccindex::db::Table {
    TableBuilder::new("sales")
        .int_column("cust", (0..ROWS).map(|i| cust_of(i, c)))
        .int_column("amount", (0..ROWS).map(|i| amount_of(i, a)))
        .build()
        .expect("equal columns")
}

fn customers() -> ccindex::db::Table {
    TableBuilder::new("customers")
        .int_column("id", 0..CUSTOMERS as i64)
        .str_column(
            "region",
            (0..CUSTOMERS).map(|i| ["e", "w", "n", "s"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

/// The probe mix every reader replays against its pinned snapshot: a
/// point and a range on the churning column, a point on the shard key,
/// and a full filter+join+group pipeline. Works verbatim against every
/// catalog and snapshot type (they share the query-builder surface).
macro_rules! probe_all {
    ($cat:expr) => {{
        let rows = |q: &str| -> ResultRows {
            match q {
                "point" => $cat
                    .query("sales")
                    .filter(eq("amount", 68))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                "range" => $cat
                    .query("sales")
                    .filter(between("amount", 100, 300))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                "key" => $cat
                    .query("sales")
                    .filter(eq("cust", 9))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                _ => $cat
                    .query("sales")
                    .filter(between("amount", 50, 400))
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
            }
        };
        vec![rows("point"), rows("range"), rows("key"), rows("pipeline")]
    }};
}

/// The answers generation `(a, c)` must serve, computed on a scratch
/// unsharded catalog built directly at that state (sharded execution is
/// byte-identical to unsharded by the scatter-gather equivalence suite).
fn reference_answers(a: usize, c: usize) -> Vec<ResultRows> {
    let mut db = Database::new();
    db.register(sales_at(a, c)).expect("fresh catalog");
    db.register(customers()).expect("fresh catalog");
    index_catalog(&mut db);
    probe_all!(db)
}

/// Both catalog types expose the same `create_index` surface; a macro
/// (not a trait bound) keeps the sharded/unsharded seeding identical.
macro_rules! index_catalog {
    ($db:expr) => {
        $db.create_index("sales", "cust", IndexKind::Hash).unwrap();
        $db.create_index("sales", "cust", IndexKind::FullCss)
            .unwrap();
        $db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        $db.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
    };
}

fn index_catalog(db: &mut Database) {
    index_catalog!(db);
}

/// Race `READERS` snapshot-pinning readers against one committing writer
/// and assert every pinned generation serves exactly its own answers.
macro_rules! race_readers_against_writer {
    ($db:expr, $label:expr) => {{
        let ops = schedule(writer_commits());
        let expected: Vec<Vec<ResultRows>> = states_after(&ops)
            .into_iter()
            .map(|(a, c)| reference_answers(a, c))
            .collect();
        let g0 = $db.generation();
        let handle = $db.handle();
        // Pinned before the race: must stay byte-stable through every
        // commit and keep exactly one snapshot pinned when the dust
        // settles.
        let early = $db.snapshot();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for reader in 0..READERS {
                let handle = handle.clone();
                let (done, expected) = (&done, &expected);
                s.spawn(move || {
                    let mut last_gen = 0u64;
                    for iter in 0usize.. {
                        let snap = handle.snapshot();
                        let g = snap.generation();
                        assert!(
                            g >= last_gen,
                            "{}: reader {reader} saw generations move backwards ({last_gen} -> {g})",
                            $label
                        );
                        last_gen = g;
                        let d = (g - g0) as usize;
                        assert!(
                            d < expected.len(),
                            "{}: pinned generation {g} was never committed",
                            $label
                        );
                        assert_eq!(
                            probe_all!(snap),
                            expected[d],
                            "{}: reader {reader} got answers from a torn generation {g}",
                            $label
                        );
                        if done.load(Ordering::Relaxed) && iter >= 4 {
                            break;
                        }
                        assert!(iter < 100_000, "{}: the writer never finished", $label);
                    }
                });
            }
            let (db, ops, done) = (&mut $db, &ops, &done);
            s.spawn(move || {
                for op in ops {
                    match *op {
                        Op::Amount(k) => {
                            db.replace_column("sales", "amount", amount_values(k))
                                .expect("same shape");
                        }
                        Op::Cust(k) => {
                            db.replace_column("sales", "cust", cust_values(k))
                                .expect("same shape");
                        }
                        Op::Rebuild => {
                            db.rebuild_column("sales", "amount").expect("indexed");
                        }
                    }
                    // A breath between commits so reader pins interleave
                    // with many different generations, not just the last.
                    std::thread::sleep(Duration::from_micros(300));
                }
                done.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(
            $db.generation(),
            g0 + ops.len() as u64,
            "{}: every op commits exactly one generation",
            $label
        );
        assert_eq!(
            probe_all!(early),
            expected[0],
            "{}: the pre-race snapshot must stay byte-stable",
            $label
        );
        assert_eq!(
            $db.pinned_snapshots(),
            1,
            "{}: only the pre-race snapshot is still pinned",
            $label
        );
        drop(early);
        assert_eq!(
            $db.pinned_snapshots(),
            0,
            "{}: dropping the last pin reclaims the old generations",
            $label
        );
    }};
}

#[test]
fn unsharded_readers_race_the_writer() {
    let mut db = Database::new();
    db.register(sales_at(0, 0)).unwrap();
    db.register(customers()).unwrap();
    index_catalog(&mut db);
    race_readers_against_writer!(db, "unsharded");
}

fn seed_sharded<P: Partitioner + 'static>(p: P) -> ShardedDatabase {
    let mut db = ShardedDatabase::new(p).unwrap();
    db.register(sales_at(0, 0), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    index_catalog!(db);
    db
}

#[test]
fn hash_sharded_readers_race_the_writer() {
    let mut db = seed_sharded(HashPartitioner::new(4).unwrap());
    race_readers_against_writer!(db, "hash x4");
}

#[test]
fn range_sharded_readers_race_the_writer() {
    let mut db = seed_sharded(RangePartitioner::int_spans(0, CUSTOMERS as i64 - 1, 4).unwrap());
    race_readers_against_writer!(db, "range x4");
}
