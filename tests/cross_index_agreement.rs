//! Property tests: all eight index methods agree with the reference
//! semantics (leftmost match / `partition_point` lower bound) on
//! arbitrary key multisets — the §3.6 duplicate contract, across every
//! implementation at once.

use ccindex::db::{build_index, build_ordered_index, IndexKind};
use ccindex::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn reference_search(keys: &[u32], probe: u32) -> Option<usize> {
    let pos = keys.partition_point(|&k| k < probe);
    (pos < keys.len() && keys[pos] == probe).then_some(pos)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_methods_agree_on_search(
        mut keys in vec(0u32..5_000, 0..600),
        probes in vec(0u32..5_200, 50),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        let indexes: Vec<_> = IndexKind::ALL
            .iter()
            .map(|&k| (k, build_index(k, &arr)))
            .collect();
        for probe in probes {
            let expected = reference_search(&keys, probe);
            for (kind, idx) in &indexes {
                prop_assert_eq!(
                    idx.search(probe),
                    expected,
                    "{:?} disagrees on probe {} over {} keys",
                    kind, probe, keys.len()
                );
            }
        }
    }

    #[test]
    fn ordered_methods_agree_on_lower_bound(
        mut keys in vec(0u32..3_000, 0..500),
        probes in vec(0u32..3_200, 50),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        let indexes: Vec<_> = IndexKind::ORDERED
            .iter()
            .map(|&k| (k, build_ordered_index(k, &arr)))
            .collect();
        for probe in probes {
            let expected = keys.partition_point(|&k| k < probe);
            for (kind, idx) in &indexes {
                prop_assert_eq!(
                    idx.lower_bound(probe),
                    expected,
                    "{:?} disagrees on probe {}",
                    kind, probe
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_monotone(
        mut keys in vec(0u32..10_000, 1..400),
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, &arr);
            let mut prev = 0usize;
            for probe in (0..10_050u32).step_by(97) {
                let lb = idx.lower_bound(probe);
                prop_assert!(lb >= prev, "{kind:?}: lower_bound not monotone");
                prop_assert!(lb <= keys.len());
                prev = lb;
            }
        }
    }

    #[test]
    fn css_node_size_sweep_agrees(
        mut keys in vec(0u32..2_000, 0..400),
        probe in 0u32..2_100,
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        let expected = keys.partition_point(|&k| k < probe);
        for &m in css_tree::STANDARD_NODE_SIZES {
            let full = css_tree::DynCssTree::build(css_tree::CssVariant::Full, m, arr.clone());
            prop_assert_eq!(full.lower_bound(probe), expected, "full m={}", m);
            let level = css_tree::DynCssTree::build(css_tree::CssVariant::Level, m, arr.clone());
            prop_assert_eq!(level.lower_bound(probe), expected, "level m={}", m);
        }
        // Odd sizes via the generic fallback, including the m=24 bump.
        for m in [3usize, 7, 24, 100] {
            let g = css_tree::generic_search::GenericFullCss::from_shared(arr.clone(), m);
            prop_assert_eq!(g.lower_bound(probe), expected, "generic m={}", m);
        }
    }

    #[test]
    fn traced_and_untraced_results_agree(
        mut keys in vec(0u32..1_000, 1..300),
        probe in 0u32..1_100,
    ) {
        keys.sort_unstable();
        let arr = SortedArray::from_slice(&keys);
        for kind in IndexKind::ALL {
            let idx = build_index(kind, &arr);
            let mut tracer = ccindex::common::CountingTracer::new();
            prop_assert_eq!(
                idx.search_traced(probe, &mut tracer),
                idx.search(probe),
                "{:?}", kind
            );
        }
    }
}
