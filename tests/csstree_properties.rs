//! Property tests focused on the CSS-tree itself: layout invariants,
//! record trees, batched search, and construction validity over arbitrary
//! inputs.

use ccindex::common::{OrderedIndex, SearchIndex};
use ccindex::css::{records::RecordCssTree, FullCssTree, GenericFullCss, LevelCssTree};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Algorithm 4.1's invariant holds for arbitrary inputs — including
    /// heavy duplication and sizes straddling the layout's boundary cases.
    #[test]
    fn built_trees_validate(mut keys in vec(0u32..500, 0..700)) {
        keys.sort_unstable();
        FullCssTree::<u32, 4>::build(&keys).validate().map_err(|e| {
            TestCaseError::fail(format!("m=4: {e}"))
        })?;
        FullCssTree::<u32, 16>::build(&keys).validate().map_err(|e| {
            TestCaseError::fail(format!("m=16: {e}"))
        })?;
    }

    /// Full, level and generic trees all agree with the reference on
    /// random inputs across a spread of node sizes.
    #[test]
    fn variants_agree_with_reference(
        mut keys in vec(0u32..2_000, 0..500),
        probes in vec(0u32..2_100, 40),
    ) {
        keys.sort_unstable();
        let full = FullCssTree::<u32, 5>::build(&keys);
        let level = LevelCssTree::<u32, 8>::build(&keys);
        let generic = GenericFullCss::build(&keys, 9);
        for probe in probes {
            let expected = keys.partition_point(|&k| k < probe);
            prop_assert_eq!(full.lower_bound(probe), expected);
            prop_assert_eq!(level.lower_bound(probe), expected);
            prop_assert_eq!(generic.lower_bound(probe), expected);
        }
    }

    /// The interleaved batch path is identical to the sequential path for
    /// any probe multiset and lane count.
    #[test]
    fn batch_matches_sequential(
        mut keys in vec(0u32..5_000, 1..800),
        probes in vec(0u32..5_200, 1..200),
    ) {
        keys.sort_unstable();
        let t = FullCssTree::<u32, 8>::build(&keys);
        let seq = t.lower_bound_batch_sequential(&probes);
        prop_assert_eq!(t.lower_bound_batch_interleaved::<3>(&probes), seq.clone());
        prop_assert_eq!(t.lower_bound_batch_interleaved::<8>(&probes), seq.clone());
        prop_assert_eq!(t.lower_bound_batch(&probes), seq);
    }

    /// Record trees behave like key trees regardless of payload width.
    #[test]
    fn record_tree_matches_key_tree(
        mut keys in vec(0u32..3_000, 0..400),
        probes in vec(0u32..3_100, 30),
    ) {
        keys.sort_unstable();
        let records: Vec<(u32, u64)> =
            keys.iter().map(|&k| (k, (k as u64).wrapping_mul(0x9E3779B9))).collect();
        let kt = FullCssTree::<u32, 8>::build(&keys);
        let rt = RecordCssTree::<(u32, u64), 8>::build(&records);
        for probe in probes {
            prop_assert_eq!(rt.lower_bound(probe), kt.lower_bound(probe));
            let found = rt.search(probe);
            prop_assert_eq!(found.map(|r| r.0), kt.search(probe).map(|_| probe));
            if let Some(r) = found {
                prop_assert_eq!(r.1, (probe as u64).wrapping_mul(0x9E3779B9));
            }
        }
    }

    /// `equal_range` over every ordered method equals the reference run
    /// bounds, for arbitrarily duplicated keys.
    #[test]
    fn equal_range_matches_reference(
        mut keys in vec(0u32..60, 1..400), // small domain -> many duplicates
        probe in 0u32..70,
    ) {
        keys.sort_unstable();
        let expected = (
            keys.partition_point(|&k| k < probe),
            keys.partition_point(|&k| k <= probe),
        );
        let arr = ccindex::common::SortedArray::from_slice(&keys);
        for kind in ccindex::db::IndexKind::ORDERED {
            let idx = ccindex::db::build_ordered_index(kind, &arr);
            prop_assert_eq!(idx.equal_range(probe), expected, "{:?}", kind);
            prop_assert_eq!(idx.count_key(probe), expected.1 - expected.0, "{:?}", kind);
        }
    }
}

/// Deterministic regression corpus for layout boundary cases discovered
/// during development: exact powers of the branching factor, one-over
/// sizes, and the dangling-leaf configuration.
#[test]
fn layout_boundary_regression_corpus() {
    for (n, m) in [
        (100usize, 4usize), // B = 25 = 5^2: all leaves on one level
        (104, 4),           // dangling bottom leaves
        (103, 4),           // dangling + partial last leaf
        (4, 4),             // single full leaf
        (5, 4),             // two leaves, depth 1
        (624, 4),           // B = 156: within one of 5^3+...
        (625 * 4, 4),       // B = 625 = 5^4
        (16, 16),
        (17, 16),
        (4096, 16),
    ] {
        let keys: Vec<u32> = (0..n as u32).map(|i| i * 2 + 1).collect();
        let t = ccindex::css::DynCssTree::build(
            ccindex::css::CssVariant::Full,
            m,
            ccindex::common::SortedArray::from_slice(&keys),
        );
        use ccindex::common::OrderedIndex;
        for probe in 0..(n as u32 * 2 + 3) {
            assert_eq!(
                t.lower_bound(probe),
                keys.partition_point(|&k| k < probe),
                "n={n} m={m} probe={probe}"
            );
        }
    }
}
