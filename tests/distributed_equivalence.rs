//! Distributed/in-process equivalence: the same scatter-gather
//! coordinator running over `RemoteShard` clients (each shard a
//! `ShardServer` behind loopback TCP) must answer **byte-identically**
//! to the in-process `ShardedDatabase` and to the unsharded `Database`
//! — the tentpole property of the transport-generic refactor. Both
//! partitioners, shard counts {1, 2, 4}, the full pipeline matrix,
//! decoded values, and update-then-query including a shard-key
//! repartition all cross the wire here. A killed shard surfaces as a
//! typed `MmdbError::Transport` — never a panic or a hang.

use ccindex::db::{MmdbError, ResultRows, Value};
use ccindex::prelude::*;
use ccindex::shard::RemoteShard;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const KEY_SPACE: i64 = 120; // 'cust' values fall in 0..KEY_SPACE

fn orders(rows: usize) -> Table {
    TableBuilder::new("orders")
        .int_column("cust", (0..rows).map(|i| (i as i64 * 131) % KEY_SPACE))
        .int_column("amount", (0..rows).map(|i| (i as i64 * 17) % 1_000))
        .str_column(
            "day",
            (0..rows).map(|i| ["mon", "tue", "wed", "thu"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

fn customers() -> Table {
    TableBuilder::new("customers")
        .int_column("id", 0..KEY_SPACE)
        .str_column(
            "region",
            (0..KEY_SPACE as usize).map(|i| ["e", "w", "n", "s"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

fn index_all(create: &mut dyn FnMut(&str, &str, IndexKind)) {
    create("orders", "cust", IndexKind::Hash);
    create("orders", "cust", IndexKind::FullCss);
    create("orders", "amount", IndexKind::FullCss);
    create("orders", "amount", IndexKind::BPlusTree);
    create("orders", "day", IndexKind::Hash);
    create("customers", "id", IndexKind::LevelCss);
    create("customers", "id", IndexKind::Hash);
}

fn unsharded(rows: usize) -> Database {
    let mut db = Database::new();
    db.register(orders(rows)).unwrap();
    db.register(customers()).unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    db
}

fn local_sharded<P: Partitioner + 'static>(rows: usize, p: P) -> ShardedDatabase {
    let mut db = ShardedDatabase::new(p).unwrap();
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    db
}

/// Spin up one `ShardServer` per shard (each fronting an empty catalog)
/// and build a coordinator over their addresses. Registration, index
/// builds, updates — everything flows through the wire.
fn distributed<P: Partitioner + 'static>(rows: usize, p: P) -> (ShardedDatabase, Vec<ShardServer>) {
    let servers: Vec<ShardServer> = (0..p.shards())
        .map(|_| ShardServer::spawn(Database::new()).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();
    let mut db = ShardedDatabase::connect(p, &addrs).unwrap();
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    (db, servers)
}

/// Every pipeline shape of the acceptance criteria, as (label, rows).
fn pipeline_battery(run: &dyn Fn(&str) -> ResultRows) -> Vec<(String, ResultRows)> {
    [
        "all",
        "point_key",
        "point_key_missing",
        "point_nonkey",
        "range_key",
        "range_nonkey",
        "conjunction",
        "join_plain",
        "join_filtered",
        "group_only",
        "group_filtered",
        "join_group_inner",
        "join_group_outer",
        "forced_css_range",
        "forced_hash_point",
    ]
    .iter()
    .map(|&name| (name.to_owned(), run(name)))
    .collect()
}

/// Both query builders expose the same combinator surface, so one macro
/// drives the identical pipeline through either catalog.
macro_rules! run_pipeline {
    ($query:expr, $what:expr) => {{
        let q = $query;
        let q = match $what {
            "all" => q,
            "point_key" => q.filter(eq("cust", 42)),
            "point_key_missing" => q.filter(eq("cust", 100_000)),
            "point_nonkey" => q.filter(eq("day", "tue")),
            "range_key" => q.filter(between("cust", 30, 110)),
            "range_nonkey" => q.filter(between("amount", 200, 700)),
            "conjunction" => q.filter(between("amount", 100, 900)).filter(eq("cust", 7)),
            "join_plain" => q.join("customers", on("cust", "id")),
            "join_filtered" => q
                .filter(between("amount", 150, 850))
                .join("customers", on("cust", "id")),
            "group_only" => q.group_by("day", count()),
            "group_filtered" => q
                .filter(between("amount", 100, 800))
                .group_by("day", sum("amount")),
            "join_group_inner" => q
                .filter(between("amount", 50, 950))
                .join("customers", on("cust", "id"))
                .group_by("region", sum("amount")),
            "join_group_outer" => q
                .join("customers", on("cust", "id"))
                .group_by("day", max("amount")),
            "forced_css_range" => q
                .filter(between("amount", 333, 666))
                .using(IndexKind::FullCss),
            "forced_hash_point" => q.filter(eq("day", "mon")).using(IndexKind::Hash),
            other => panic!("unknown pipeline {other}"),
        };
        q.run().expect("planned").rows().clone()
    }};
}

fn run_unsharded(db: &Database, what: &str) -> ResultRows {
    run_pipeline!(db.query("orders"), what)
}

fn run_sharded(db: &ShardedDatabase, what: &str) -> ResultRows {
    run_pipeline!(db.query("orders"), what)
}

#[test]
fn every_pipeline_matches_over_tcp_across_shard_counts_and_partitioners() {
    let rows = 600;
    let un = unsharded(rows);
    let reference = pipeline_battery(&|w| run_unsharded(&un, w));
    for shards in SHARD_COUNTS {
        for (label, partitioned) in [
            (
                "hash",
                distributed(rows, HashPartitioner::new(shards).unwrap()),
            ),
            (
                "range",
                distributed(
                    rows,
                    RangePartitioner::int_spans(0, KEY_SPACE - 1, shards).unwrap(),
                ),
            ),
        ] {
            let (db, servers) = partitioned;
            // Byte-identical to the unsharded engine ...
            let got = pipeline_battery(&|w| run_sharded(&db, w));
            for ((name, expect), (_, actual)) in reference.iter().zip(&got) {
                assert_eq!(
                    actual, expect,
                    "{label} x{shards} over TCP: pipeline `{name}` diverged"
                );
            }
            // ... and to the in-process sharded coordinator, same layout.
            let local = match label {
                "hash" => local_sharded(rows, HashPartitioner::new(shards).unwrap()),
                _ => local_sharded(
                    rows,
                    RangePartitioner::int_spans(0, KEY_SPACE - 1, shards).unwrap(),
                ),
            };
            let in_process = pipeline_battery(&|w| run_sharded(&local, w));
            assert_eq!(
                got, in_process,
                "{label} x{shards}: transport changed bytes"
            );
            for server in servers {
                server.shutdown();
            }
        }
    }
}

#[test]
fn decoded_values_match_through_remote_shards() {
    let rows = 400;
    let un = unsharded(rows);
    let (db, servers) = distributed(rows, HashPartitioner::new(2).unwrap());
    let s = db
        .query("orders")
        .filter(between("amount", 100, 500))
        .run()
        .unwrap();
    let u = un
        .query("orders")
        .filter(between("amount", 100, 500))
        .run()
        .unwrap();
    assert_eq!(s.values("day").unwrap(), u.values("day").unwrap());
    let s = db
        .query("orders")
        .filter(eq("day", "wed"))
        .join("customers", on("cust", "id"))
        .run()
        .unwrap();
    let u = un
        .query("orders")
        .filter(eq("day", "wed"))
        .join("customers", on("cust", "id"))
        .run()
        .unwrap();
    assert_eq!(s.values("region").unwrap(), u.values("region").unwrap());
    assert_eq!(s.values("amount").unwrap(), u.values("amount").unwrap());
    // Typed errors cross the wire unchanged.
    assert_eq!(
        db.query("nope").run().unwrap_err(),
        MmdbError::UnknownTable {
            table: "nope".into()
        }
    );
    assert!(matches!(
        s.values("nocol").unwrap_err(),
        MmdbError::UnknownColumn { .. }
    ));
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn update_then_query_matches_over_tcp_including_repartition() {
    let rows = 500;
    for shards in SHARD_COUNTS {
        let mut un = unsharded(rows);
        let (mut db, servers) = distributed(rows, HashPartitioner::new(shards).unwrap());
        // Non-key column: the update splits across remote shards.
        let amounts: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 37) % 444))
            .collect();
        un.replace_column("orders", "amount", amounts.clone())
            .unwrap();
        let report = db.replace_column("orders", "amount", amounts).unwrap();
        assert!(!report.repartitioned);
        // Shard-key column: rows migrate between remote shards — the
        // coordinator drains each server's rows and re-registers the
        // new placement, all over the wire.
        let keys: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 53 + 11) % KEY_SPACE))
            .collect();
        un.replace_column("orders", "cust", keys.clone()).unwrap();
        let report = db.replace_column("orders", "cust", keys).unwrap();
        assert!(report.repartitioned);
        let reference = pipeline_battery(&|w| run_unsharded(&un, w));
        let got = pipeline_battery(&|w| run_sharded(&db, w));
        for ((name, expect), (_, actual)) in reference.iter().zip(&got) {
            assert_eq!(
                actual, expect,
                "x{shards} over TCP after updates: `{name}` diverged"
            );
        }
        for server in servers {
            server.shutdown();
        }
    }
}

#[test]
fn killed_shard_surfaces_a_typed_transport_error() {
    let rows = 300;
    let (db, mut servers) = distributed(rows, HashPartitioner::new(2).unwrap());
    // Healthy first: the fanned pipeline answers.
    let want = db
        .query("orders")
        .filter(between("amount", 100, 500))
        .run()
        .unwrap()
        .rows()
        .clone();
    assert!(!matches!(want, ResultRows::Rids(ref r) if r.is_empty()));
    // Kill shard 1 mid-session. The next fanned query must fail with a
    // typed transport error — no panic, no hang (the remote client's
    // bounded reconnect gives up after its backoff schedule).
    servers.remove(1).kill();
    let err = db
        .query("orders")
        .filter(between("amount", 100, 500))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, MmdbError::Transport { .. }),
        "expected a typed transport error, got {err:?}"
    );
    // The error is descriptive: it names the dead endpoint.
    let text = err.to_string();
    assert!(text.contains("127.0.0.1"), "{text}");
    // Mutations hit the same typed wall instead of corrupting state.
    let mut db = db;
    let err = db
        .replace_column(
            "orders",
            "amount",
            (0..rows).map(|i| Value::Int(i as i64)).collect(),
        )
        .unwrap_err();
    assert!(
        matches!(err, MmdbError::Transport { .. }),
        "expected a typed transport error, got {err:?}"
    );
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn wire_shutdown_stops_a_server_and_later_connects_fail_typed() {
    let server = ShardServer::spawn(Database::new()).unwrap();
    let addr = server.addr();
    let shard = RemoteShard::connect(addr.as_str()).unwrap();
    shard.shutdown().unwrap();
    // The wire shutdown already stopped the accept loop; joining the
    // server returns promptly and closes the listener for good.
    server.shutdown();
    // A fresh client cannot connect and fails with the typed connect
    // fault after bounded retries — never a hang.
    let err = RemoteShard::connect(addr.as_str()).unwrap_err();
    assert!(
        matches!(err, MmdbError::Transport { .. }),
        "expected a typed transport error, got {err:?}"
    );
}
