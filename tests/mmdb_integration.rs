//! End-to-end database-substrate tests: query operators against brute
//! force on randomized tables, for every index kind.

use ccindex::db::domain::Value;
use ccindex::db::{
    apply_batch, build_index, build_ordered_index, indexed_nested_loop_join, point_select,
    range_select, IndexKind, RidList, TableBuilder,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_select_matches_scan(
        values in vec(0i64..200, 1..300),
        probe in 0i64..220,
    ) {
        let t = TableBuilder::new("t").int_column("v", values.clone()).build();
        let col = t.column("v").unwrap();
        let rids = RidList::for_column(col);
        let expected: Vec<u32> = (0..values.len() as u32)
            .filter(|&r| values[r as usize] == probe)
            .collect();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rids.keys());
            let mut got = point_select(col, &rids, idx.as_ref(), &Value::Int(probe));
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?}", kind);
        }
    }

    #[test]
    fn range_select_matches_scan(
        values in vec(0i64..500, 1..300),
        a in 0i64..520,
        b in 0i64..520,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t = TableBuilder::new("t").int_column("v", values.clone()).build();
        let col = t.column("v").unwrap();
        let rids = RidList::for_column(col);
        let mut expected: Vec<u32> = (0..values.len() as u32)
            .filter(|&r| (lo..=hi).contains(&values[r as usize]))
            .collect();
        expected.sort_unstable();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rids.keys());
            let mut got = range_select(col, &rids, idx.as_ref(), &Value::Int(lo), &Value::Int(hi));
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?} range [{},{}]", kind, lo, hi);
        }
    }

    #[test]
    fn join_matches_nested_scan(
        outer in vec(0i64..60, 1..120),
        inner in vec(0i64..60, 1..120),
    ) {
        let ot = TableBuilder::new("o").int_column("k", outer.clone()).build();
        let it = TableBuilder::new("i").int_column("k", inner.clone()).build();
        let ocol = ot.column("k").unwrap();
        let icol = it.column("k").unwrap();
        let irids = RidList::for_column(icol);

        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (o, ov) in outer.iter().enumerate() {
            for (i, iv) in inner.iter().enumerate() {
                if ov == iv {
                    expected.push((o as u32, i as u32));
                }
            }
        }
        expected.sort_unstable();

        for kind in [IndexKind::FullCss, IndexKind::Hash, IndexKind::TTree] {
            let idx = build_index(kind, irids.keys());
            let mut got: Vec<(u32, u32)> =
                indexed_nested_loop_join(ocol, icol, &irids, idx.as_ref())
                    .into_iter()
                    .map(|j| (j.outer_rid, j.inner_rid))
                    .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?}", kind);
        }
    }

    #[test]
    fn batch_update_preserves_search_correctness(
        base in vec(0u32..10_000, 1..200),
        ins in vec(10_000u32..20_000, 0..50),
        del_fraction in 0usize..100,
    ) {
        let mut keys = base.clone();
        keys.sort_unstable();
        let mut inserts: Vec<u32> = ins.clone();
        inserts.sort_unstable();
        inserts.dedup();
        let n_del = keys.len() * del_fraction / 100 / 2;
        let deletes: Vec<u32> = keys.iter().copied().step_by(2).take(n_del).collect();

        let arr = ccindex::common::SortedArray::from_slice(&keys);
        let result = apply_batch(&arr, &inserts, &deletes, IndexKind::LevelCss);

        // Reference merge.
        let mut expected = keys.clone();
        for d in &deletes {
            let pos = expected.iter().position(|k| k == d).expect("delete exists");
            expected.remove(pos);
        }
        expected.extend(inserts.iter().copied());
        expected.sort_unstable();
        prop_assert_eq!(result.keys.as_slice(), expected.as_slice());

        // Index over the merged set answers correctly.
        for probe in expected.iter().step_by(7) {
            prop_assert!(result.index.search(*probe).is_some());
        }
    }
}

/// String-valued columns exercise the domain encoding end to end.
#[test]
fn string_range_queries_via_domain_ids() {
    let cities = ["austin", "boston", "chicago", "denver", "el paso", "fresno"];
    let values: Vec<Value> = (0..600).map(|i| cities[i % cities.len()].into()).collect();
    let t = TableBuilder::new("t")
        .column("city", values.clone())
        .build();
    let col = t.column("city").unwrap();
    let rids = RidList::for_column(col);
    let idx = build_ordered_index(IndexKind::FullCss, rids.keys());

    // Range [boston, denver] covers boston, chicago, denver = 300 rows.
    let got = range_select(col, &rids, idx.as_ref(), &"boston".into(), &"denver".into());
    assert_eq!(got.len(), 300);
    for rid in got {
        let v = col.value(rid).to_string();
        assert!(["boston", "chicago", "denver"].contains(&v.as_str()), "{v}");
    }
}
