//! End-to-end database-substrate tests: query operators against brute
//! force on randomized tables, for every index kind — plus the
//! engine-vs-raw-operator equivalence suite: the same query through
//! [`Database`] and through the free functions must return identical RID
//! sets / join pairs / group rows for every [`IndexKind`].

use ccindex::db::domain::Value;
use ccindex::db::{
    apply_batch, between, build_index, build_ordered_index, count, eq, group_aggregate,
    indexed_nested_loop_join, on, point_select, range_select, sum, AggFn, Database, IndexKind,
    RidList, Table, TableBuilder,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_select_matches_scan(
        values in vec(0i64..200, 1..300),
        probe in 0i64..220,
    ) {
        let t = TableBuilder::new("t").int_column("v", values.clone()).build().unwrap();
        let col = t.column("v").unwrap();
        let rids = RidList::for_column(col);
        let expected: Vec<u32> = (0..values.len() as u32)
            .filter(|&r| values[r as usize] == probe)
            .collect();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rids.keys());
            let mut got = point_select(col, &rids, idx.as_ref(), &Value::Int(probe));
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?}", kind);
        }
    }

    #[test]
    fn range_select_matches_scan(
        values in vec(0i64..500, 1..300),
        a in 0i64..520,
        b in 0i64..520,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t = TableBuilder::new("t").int_column("v", values.clone()).build().unwrap();
        let col = t.column("v").unwrap();
        let rids = RidList::for_column(col);
        let mut expected: Vec<u32> = (0..values.len() as u32)
            .filter(|&r| (lo..=hi).contains(&values[r as usize]))
            .collect();
        expected.sort_unstable();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rids.keys());
            let mut got = range_select(col, &rids, idx.as_ref(), &Value::Int(lo), &Value::Int(hi));
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?} range [{},{}]", kind, lo, hi);
        }
    }

    #[test]
    fn join_matches_nested_scan(
        outer in vec(0i64..60, 1..120),
        inner in vec(0i64..60, 1..120),
    ) {
        let ot = TableBuilder::new("o").int_column("k", outer.clone()).build().unwrap();
        let it = TableBuilder::new("i").int_column("k", inner.clone()).build().unwrap();
        let ocol = ot.column("k").unwrap();
        let icol = it.column("k").unwrap();
        let irids = RidList::for_column(icol);

        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (o, ov) in outer.iter().enumerate() {
            for (i, iv) in inner.iter().enumerate() {
                if ov == iv {
                    expected.push((o as u32, i as u32));
                }
            }
        }
        expected.sort_unstable();

        for kind in [IndexKind::FullCss, IndexKind::Hash, IndexKind::TTree] {
            let idx = build_index(kind, irids.keys());
            let mut got: Vec<(u32, u32)> =
                indexed_nested_loop_join(ocol, icol, &irids, idx.as_ref())
                    .into_iter()
                    .map(|j| (j.outer_rid, j.inner_rid))
                    .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{:?}", kind);
        }
    }

    #[test]
    fn batch_update_preserves_search_correctness(
        base in vec(0u32..10_000, 1..200),
        ins in vec(10_000u32..20_000, 0..50),
        del_fraction in 0usize..100,
    ) {
        let mut keys = base.clone();
        keys.sort_unstable();
        let mut inserts: Vec<u32> = ins.clone();
        inserts.sort_unstable();
        inserts.dedup();
        let n_del = keys.len() * del_fraction / 100 / 2;
        let deletes: Vec<u32> = keys.iter().copied().step_by(2).take(n_del).collect();

        let arr = ccindex::common::SortedArray::from_slice(&keys);
        let result = apply_batch(&arr, &inserts, &deletes, IndexKind::LevelCss);

        // Reference merge.
        let mut expected = keys.clone();
        for d in &deletes {
            let pos = expected.iter().position(|k| k == d).expect("delete exists");
            expected.remove(pos);
        }
        expected.extend(inserts.iter().copied());
        expected.sort_unstable();
        prop_assert_eq!(result.keys.as_slice(), expected.as_slice());

        // Index over the merged set answers correctly.
        for probe in expected.iter().step_by(7) {
            prop_assert!(result.index.search(*probe).is_some());
        }
    }
}

// ---------------------------------------------------------------------
// Engine-vs-raw-operator equivalence: for every index kind, the same
// query answered by the `Database` engine and by hand-threaded free
// functions.
// ---------------------------------------------------------------------

/// A deterministic two-table schema with duplicates in every column.
fn star_tables() -> (Table, Table) {
    let n = 400usize;
    let sales = TableBuilder::new("sales")
        .int_column("cust", (0..n).map(|i| (i * 7 % 50) as i64))
        .int_column("amount", (0..n).map(|i| (i * 13 % 90) as i64))
        .build()
        .expect("equal columns");
    let customers = TableBuilder::new("customers")
        .int_column("id", (0..45).map(|i| i as i64))
        .str_column("region", (0..45).map(|i| ["n", "s", "e", "w"][i % 4]))
        .build()
        .expect("equal columns");
    (sales, customers)
}

/// Engine with one index kind on every access-path column.
fn engine_with(kind: IndexKind) -> Database {
    let (sales, customers) = star_tables();
    let mut db = Database::new();
    db.register(sales).unwrap();
    db.register(customers).unwrap();
    db.create_index("sales", "amount", kind).unwrap();
    db.create_index("customers", "id", kind).unwrap();
    db
}

#[test]
fn engine_point_select_equals_raw_for_every_kind() {
    let (sales, _) = star_tables();
    let amount = sales.column("amount").unwrap();
    let rids = RidList::for_column(amount);
    for kind in IndexKind::ALL {
        let db = engine_with(kind);
        let idx = build_index(kind, rids.keys());
        for probe in [0i64, 13, 26, 89, 91, -1] {
            let mut raw = point_select(amount, &rids, idx.as_ref(), &Value::Int(probe));
            raw.sort_unstable();
            let engine = db
                .query("sales")
                .filter(eq("amount", probe))
                .using(kind)
                .run()
                .unwrap();
            assert_eq!(engine.rids(), raw.as_slice(), "{kind:?} probe {probe}");
        }
    }
}

#[test]
fn engine_range_select_equals_raw_for_every_ordered_kind() {
    let (sales, _) = star_tables();
    let amount = sales.column("amount").unwrap();
    let rids = RidList::for_column(amount);
    for kind in IndexKind::ORDERED {
        let db = engine_with(kind);
        let idx = build_ordered_index(kind, rids.keys());
        for (lo, hi) in [(0i64, 20i64), (15, 15), (85, 200), (90, 95)] {
            let mut raw = range_select(
                amount,
                &rids,
                idx.as_ref(),
                &Value::Int(lo),
                &Value::Int(hi),
            );
            raw.sort_unstable();
            let engine = db
                .query("sales")
                .filter(between("amount", lo, hi))
                .using(kind)
                .run()
                .unwrap();
            assert_eq!(engine.rids(), raw.as_slice(), "{kind:?} [{lo}, {hi}]");
        }
    }
}

#[test]
fn engine_conjunction_equals_brute_force_for_every_ordered_kind() {
    let (sales, _) = star_tables();
    let cust = sales.column("cust").unwrap();
    let amount = sales.column("amount").unwrap();
    let expected: Vec<u32> = (0..sales.rows() as u32)
        .filter(|&r| {
            matches!(cust.value(r), Value::Int(c) if (10..=30).contains(c))
                && matches!(amount.value(r), Value::Int(a) if (0..=45).contains(a))
        })
        .collect();
    for kind in IndexKind::ORDERED {
        let mut db = engine_with(kind);
        db.create_index("sales", "cust", kind).unwrap();
        let engine = db
            .query("sales")
            .filter(between("cust", 10, 30))
            .filter(between("amount", 0, 45))
            .using(kind)
            .run()
            .unwrap();
        assert_eq!(engine.rids(), expected.as_slice(), "{kind:?}");
    }
}

#[test]
fn engine_join_equals_raw_for_every_kind() {
    let (sales, customers) = star_tables();
    let cust = sales.column("cust").unwrap();
    let id = customers.column("id").unwrap();
    let id_rids = RidList::for_column(id);
    for kind in IndexKind::ALL {
        let db = engine_with(kind);
        let idx = build_index(kind, id_rids.keys());
        let mut raw: Vec<(u32, u32)> = indexed_nested_loop_join(cust, id, &id_rids, idx.as_ref())
            .into_iter()
            .map(|j| (j.outer_rid, j.inner_rid))
            .collect();
        raw.sort_unstable();
        let engine = db
            .query("sales")
            .join("customers", on("cust", "id"))
            .using(kind)
            .run()
            .unwrap();
        let mut pairs: Vec<(u32, u32)> = engine
            .join_rows()
            .iter()
            .map(|j| (j.outer_rid, j.inner_rid))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, raw, "{kind:?}");
    }
}

#[test]
fn engine_group_by_equals_raw_for_every_kind() {
    let (sales, _) = star_tables();
    let cust = sales.column("cust").unwrap();
    let amount = sales.column("amount").unwrap();
    let cust_rids = RidList::for_column(cust);
    // Raw path: grouped aggregation over the RID list sorted on `cust`.
    let raw_counts = group_aggregate(cust, &cust_rids, None, AggFn::Count);
    let raw_sums = group_aggregate(cust, &cust_rids, Some(amount), AggFn::Sum);
    for kind in IndexKind::ALL {
        let db = engine_with(kind);
        let engine_counts = db.query("sales").group_by("cust", count()).run().unwrap();
        assert_eq!(engine_counts.groups(), raw_counts.as_slice(), "{kind:?}");
        let engine_sums = db
            .query("sales")
            .group_by("cust", sum("amount"))
            .run()
            .unwrap();
        assert_eq!(engine_sums.groups(), raw_sums.as_slice(), "{kind:?}");
    }
}

/// The full pipeline — select, join, group — against a hand-composed
/// raw-operator pipeline, for every kind that can drive it.
#[test]
fn engine_pipeline_equals_raw_composition() {
    let (sales, customers) = star_tables();
    let amount = sales.column("amount").unwrap();
    let cust = sales.column("cust").unwrap();
    let region = customers.column("region").unwrap();
    let id = customers.column("id").unwrap();
    let amount_rids = RidList::for_column(amount);
    let id_rids = RidList::for_column(id);
    for kind in IndexKind::ORDERED {
        let db = engine_with(kind);
        let engine = db
            .query("sales")
            .filter(between("amount", 30, 80))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .using(kind)
            .run()
            .unwrap();

        // Raw composition of the same query.
        let idx = build_ordered_index(kind, amount_rids.keys());
        let mut selected = range_select(
            amount,
            &amount_rids,
            idx.as_ref(),
            &Value::Int(30),
            &Value::Int(80),
        );
        selected.sort_unstable();
        let inner_idx = build_index(kind, id_rids.keys());
        let joined = ccindex::db::indexed_nested_loop_join_rids(
            cust,
            &selected,
            id,
            &id_rids,
            inner_idx.as_ref(),
        );
        let raw = ccindex::db::group_aggregate_pairs(
            region,
            Some(amount),
            joined.iter().map(|j| (j.inner_rid, j.outer_rid)),
            AggFn::Sum,
        );
        assert_eq!(engine.groups(), raw.as_slice(), "{kind:?}");
    }
}

/// String-valued columns exercise the domain encoding end to end.
#[test]
fn string_range_queries_via_domain_ids() {
    let cities = ["austin", "boston", "chicago", "denver", "el paso", "fresno"];
    let values: Vec<Value> = (0..600).map(|i| cities[i % cities.len()].into()).collect();
    let t = TableBuilder::new("t")
        .column("city", values.clone())
        .build()
        .expect("one column");
    let col = t.column("city").unwrap();
    let rids = RidList::for_column(col);
    let idx = build_ordered_index(IndexKind::FullCss, rids.keys());

    // Range [boston, denver] covers boston, chicago, denver = 300 rows.
    let got = range_select(col, &rids, idx.as_ref(), &"boston".into(), &"denver".into());
    assert_eq!(got.len(), 300);
    for rid in got {
        let v = col.value(rid).to_string();
        assert!(["boston", "chicago", "denver"].contains(&v.as_str()), "{v}");
    }
}
