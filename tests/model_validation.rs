//! The §5 analytical models versus the real structures and the cache
//! simulator: the paper's tables are not just printed, they are *checked*.

use analysis::space_model::{space_indirect, Method};
use analysis::time_model::cost_breakdown;
use analysis::Params;
use ccindex::db::{build_index, IndexKind};
use ccindex::prelude::*;
use ccindex::sim::SimTracer;
use workload::{KeySetBuilder, LookupStream};

fn keys(n: usize) -> Vec<u32> {
    KeySetBuilder::new(n).build()
}

/// Measured `space_bytes` of each built index must track the Fig. 7
/// formulas (within discretisation slack for partially filled top levels).
#[test]
fn measured_space_matches_formulas() {
    let n = 1_000_000usize;
    let ks = keys(n);
    let arr = SortedArray::from_slice(&ks);
    let p = Params::default().with_n(n);

    let cases = [
        (IndexKind::BinarySearch, Method::BinarySearch),
        (IndexKind::BPlusTree, Method::BPlusTree),
        (IndexKind::FullCss, Method::FullCss),
        (IndexKind::LevelCss, Method::LevelCss),
    ];
    for (kind, method) in cases {
        let built = build_index(kind, &arr);
        let measured = built.space().indirect_bytes as f64;
        let formula = space_indirect(method, &p);
        if formula == 0.0 {
            assert_eq!(measured, 0.0, "{kind:?}");
        } else {
            let ratio = measured / formula;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{kind:?}: measured {measured}, formula {formula}, ratio {ratio}"
            );
        }
    }

    // T-tree: 8 entries/node (12-byte header + 8*(4+4) = 76-byte nodes).
    // The Fig. 7 formula assumes header-free nodes of sc bytes, so we
    // compare against the exact arena expectation instead.
    let ttree = build_index(IndexKind::TTree, &arr);
    let expected = (n / 8) * 76;
    let got = ttree.space().direct_bytes;
    assert!(
        (got as f64 / expected as f64 - 1.0).abs() < 0.05,
        "ttree arena {got} vs expected {expected}"
    );
    // And the direct-vs-indirect gap is exactly the embedded RIDs (Fig. 7).
    assert_eq!(
        ttree.space().direct_bytes - ttree.space().indirect_bytes,
        n * 4
    );
}

/// Cold-cache misses per lookup, simulated, must match the Fig. 6 model:
/// ~log_{m+1}(n) line touches for a CSS-tree vs ~log2(n) for binary
/// search on a large array.
#[test]
fn simulated_misses_match_cost_model() {
    let n = 2_000_000usize;
    let ks = keys(n);
    let arr = SortedArray::from_slice(&ks);
    let p = Params::default().with_n(n); // m = 16, c = 64

    // Use the modern machine's L1 only as "the cache": 64-byte lines to
    // match the model's c = 64, single level to avoid inclusive effects.
    let probe_stream = LookupStream::successful(&ks, 400, 5);

    for (kind, method) in [
        (IndexKind::BinarySearch, Method::BinarySearch),
        (IndexKind::BPlusTree, Method::BPlusTree),
        (IndexKind::FullCss, Method::FullCss),
        (IndexKind::LevelCss, Method::LevelCss),
    ] {
        let idx = build_index(kind, &arr);
        let mut hierarchy =
            ccindex::sim::CacheHierarchy::new(vec![ccindex::sim::Cache::new(32 * 1024, 64, 8)]);
        let mut cold_misses = 0.0f64;
        for &probe in probe_stream.probes() {
            hierarchy.flush(false); // cold start per §5.1's model
            let before = hierarchy.stats().levels[0].misses;
            let mut tracer = SimTracer::new(&mut hierarchy);
            let _ = idx.search_traced(probe, &mut tracer);
            cold_misses += (hierarchy.stats().levels[0].misses - before) as f64;
        }
        let measured = cold_misses / probe_stream.len() as f64;
        let model = cost_breakdown(method, &p).expect("modelled").cache_misses;
        let ratio = measured / model;
        assert!(
            (0.55..1.45).contains(&ratio),
            "{kind:?}: measured {measured:.2} misses/lookup vs model {model:.2} (ratio {ratio:.2})"
        );
    }
}

/// Fig. 6's structural columns (branching, levels) versus real trees.
#[test]
fn structural_stats_match_model() {
    let n = 1_000_000usize;
    let ks = keys(n);
    let arr = SortedArray::from_slice(&ks);
    let p = Params::default().with_n(n);

    for (kind, method) in [
        (IndexKind::BPlusTree, Method::BPlusTree),
        (IndexKind::FullCss, Method::FullCss),
        (IndexKind::LevelCss, Method::LevelCss),
    ] {
        let idx = build_index(kind, &arr);
        let stats = idx.stats();
        let model = cost_breakdown(method, &p).expect("modelled");
        assert_eq!(
            stats.branching as f64, model.branching,
            "{kind:?} branching"
        );
        // Levels: the model is real-valued; the tree rounds up.
        let model_levels = model.levels.ceil() as u32;
        assert!(
            (stats.levels as i64 - model_levels as i64).abs() <= 1,
            "{kind:?}: tree {} vs model {}",
            stats.levels,
            model_levels
        );
    }
}

/// The space/time dominance claim of Fig. 14 on the simulated UltraSparc:
/// CSS-trees dominate B+-trees and T-trees in BOTH space and time.
#[test]
fn css_dominates_bplus_and_ttree() {
    let n = 500_000usize;
    let ks = keys(n);
    let arr = SortedArray::from_slice(&ks);
    let stream = LookupStream::successful(&ks, 20_000, 9);
    let mut machine = Machine::ultrasparc2();

    let mut run = |kind: IndexKind| {
        let idx = build_index(kind, &arr);
        let m =
            bench::protocol::simulate_lookup_protocol(idx.as_ref(), stream.probes(), &mut machine);
        (m.total_seconds, idx.space().direct_bytes)
    };
    let (css_t, css_s) = run(IndexKind::FullCss);
    let (bp_t, bp_s) = run(IndexKind::BPlusTree);
    let (tt_t, tt_s) = run(IndexKind::TTree);
    let (bin_t, bin_s) = run(IndexKind::BinarySearch);

    assert!(css_t < bp_t && css_s < bp_s, "CSS must dominate B+");
    assert!(css_t < tt_t && css_s < tt_s, "CSS must dominate T-tree");
    // Binary search is on the frontier: less space, more time.
    assert!(bin_s < css_s && bin_t > css_t);
    // §6.3 headline at this scale on the 1998 machine: more than 1.5x.
    assert!(
        bin_t / css_t > 1.5,
        "binary {bin_t} vs css {css_t}: ratio {}",
        bin_t / css_t
    );
}
