//! Parallel/sequential equivalence: every partitioned operator and every
//! engine stage routed through the worker pool must return byte-identical
//! results to its sequential counterpart — across all 8 `IndexKind`s and
//! thread counts {1, 2, 8} (plus 0 = all cores), at both layer levels:
//! the raw physical operators and whole queries through `Database` with
//! `ExecOptions`.

use ccindex::css::{CssVariant, DynCssTree};
use ccindex::db::domain::Value;
use ccindex::db::{
    between, eq, group_aggregate_pairs, group_aggregate_pairs_par, indexed_nested_loop_join_rids,
    indexed_nested_loop_join_rids_par, on, point_select_many, point_select_many_ordered,
    point_select_many_ordered_par, point_select_many_par, range_select_many, range_select_many_par,
    sum, AggFn, Database, ExecOptions, IndexKind, ResultRows, RidList, TableBuilder,
};
use ccindex::parallel::WorkerPool;
use ccindex::prelude::*;

const THREADS: [usize; 4] = [1, 2, 8, 0];

fn workload_db() -> Database {
    let n = 6_000usize;
    let mut db = Database::new();
    db.register(
        TableBuilder::new("orders")
            .int_column("cust", (0..n).map(|i| (i as i64 * 131) % 400))
            .int_column("amount", (0..n).map(|i| (i as i64 * 17) % 1_000))
            .build()
            .expect("equal columns"),
    )
    .expect("fresh");
    db.register(
        TableBuilder::new("customers")
            .int_column("id", 0..400i64)
            .str_column("region", (0..400).map(|i| ["e", "w", "n", "s"][i % 4]))
            .build()
            .expect("equal columns"),
    )
    .expect("fresh");
    for kind in IndexKind::ALL {
        db.create_index("orders", "amount", kind).expect("column");
        db.create_index("customers", "id", kind).expect("column");
    }
    db
}

/// Whole queries through the engine: every kind forced as the access
/// path, every thread count, compared stage by stage against the
/// sequential run of the same query.
#[test]
fn engine_queries_are_identical_across_kinds_and_threads() {
    let mut db = workload_db();
    for kind in IndexKind::ALL {
        let queries = |db: &Database| -> Vec<ResultRows> {
            let mut out = vec![
                // Equality stage.
                db.query("orders")
                    .filter(eq("amount", 340))
                    .using(kind)
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                // Join stage (inner access path forced to `kind`).
                db.query("orders")
                    .filter(eq("amount", 123))
                    .join("customers", on("cust", "id"))
                    .using(kind)
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                // Group stage over the whole table (no index involved in
                // the aggregation itself).
                db.query("orders")
                    .group_by("cust", sum("amount"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
            ];
            if kind.is_ordered() {
                // Range stage (the hash kind cannot serve it).
                out.push(
                    db.query("orders")
                        .filter(between("amount", 250, 750))
                        .using(kind)
                        .run()
                        .expect("planned")
                        .rows()
                        .clone(),
                );
                // The full pipeline: range + join + group.
                out.push(
                    db.query("orders")
                        .filter(between("amount", 100, 900))
                        .join("customers", on("cust", "id"))
                        .group_by("region", sum("amount"))
                        .using(kind)
                        .run()
                        .expect("planned")
                        .rows()
                        .clone(),
                );
            }
            out
        };
        db.set_exec_options(ExecOptions::default());
        let sequential = queries(&db);
        for threads in THREADS {
            db.set_exec_options(ExecOptions::threads(threads));
            assert_eq!(queries(&db), sequential, "{kind:?} threads={threads}");
        }
    }
}

/// An adaptive plan (`threads == 0`) must *explain* the worker count it
/// resolves to for the planner's row estimate — via the same
/// `adaptive_threads` the executor applies — never the raw `0` knob.
#[test]
fn adaptive_explain_reports_resolved_worker_counts() {
    let db = workload_db();
    let plan = db
        .query("orders")
        .filter(between("amount", 100, 900))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .exec(ExecOptions::threads(0))
        .plan()
        .expect("planned");
    // The chunkable nodes keep the adaptive sentinel for execution but
    // carry the driving table's row count as their explain hint.
    let join = plan.join.as_ref().expect("join step");
    let group = plan.group.as_ref().expect("group step");
    assert_eq!((join.threads, group.threads), (0, 0));
    let rows = db.table("orders").expect("registered").rows();
    assert_eq!((join.rows_hint, group.rows_hint), (rows, rows));
    let resolved = ccindex::parallel::adaptive_threads(rows);
    let text = plan.explain();
    let expect = format!("[x{resolved} threads (adaptive)]");
    assert!(text.contains(&expect), "want `{expect}` in:\n{text}");
    assert!(!text.contains("x0"), "raw 0 knob must not leak:\n{text}");
    assert!(
        text.contains("exec: adaptive worker(s), resolved per node"),
        "{text}"
    );
    // The adaptive plan still answers identically to the sequential one.
    let sequential = db
        .query("orders")
        .filter(between("amount", 100, 900))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()
        .expect("planned");
    assert_eq!(
        plan.execute(&db).expect("executed").rows(),
        sequential.rows()
    );
}

/// The raw partitioned operators against their sequential counterparts,
/// per kind and thread count.
#[test]
fn physical_operators_are_identical_across_kinds_and_threads() {
    let db = workload_db();
    let orders = db.table("orders").expect("registered");
    let amount = orders.column("amount").expect("present");
    let rl = RidList::for_column(amount);
    let customers = db.table("customers").expect("registered");
    let cust = orders.column("cust").expect("present");
    let id = customers.column("id").expect("present");
    let irl = RidList::for_column(id);
    let values: Vec<Value> = (0..500i64).map(|v| Value::Int(v * 3 - 100)).collect();
    let ranges: Vec<(Value, Value)> = (0..200i64)
        .map(|v| (Value::Int(v * 4 - 50), Value::Int(v * 4 + 90)))
        .collect();
    let all_outer: Vec<u32> = (0..cust.len() as u32).collect();
    for kind in IndexKind::ALL {
        let idx = db.index("orders", "amount", kind).expect("built");
        let inner_idx = db.index("customers", "id", kind).expect("built");
        let seq_points = point_select_many(amount, &rl, idx.as_search(), &values);
        let seq_join =
            indexed_nested_loop_join_rids(cust, &all_outer, id, &irl, inner_idx.as_search());
        for threads in THREADS {
            assert_eq!(
                point_select_many_par(amount, &rl, idx.as_search(), &values, 8, threads),
                seq_points,
                "{kind:?} threads={threads}"
            );
            assert_eq!(
                indexed_nested_loop_join_rids_par(
                    cust,
                    &all_outer,
                    id,
                    &irl,
                    inner_idx.as_search(),
                    8,
                    threads
                ),
                seq_join,
                "{kind:?} threads={threads}"
            );
            if let Some(ordered) = idx.as_ordered() {
                assert_eq!(
                    point_select_many_ordered_par(amount, &rl, ordered, &values, 8, threads),
                    point_select_many_ordered(amount, &rl, ordered, &values),
                    "{kind:?} threads={threads}"
                );
                assert_eq!(
                    range_select_many_par(amount, &rl, ordered, &ranges, 8, threads),
                    range_select_many(amount, &rl, ordered, &ranges),
                    "{kind:?} threads={threads}"
                );
            }
        }
    }
    // Parallel grouped aggregation with per-worker partials.
    let region = customers.column("region").expect("present");
    let pairs: Vec<(u32, u32)> = (0..id.len() as u32).map(|r| (r, r)).collect();
    for agg in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max] {
        let measure = (agg != AggFn::Count).then_some(id);
        let seq = group_aggregate_pairs(region, measure, pairs.iter().copied(), agg);
        for threads in THREADS {
            assert_eq!(
                group_aggregate_pairs_par(region, measure, &pairs, agg, threads),
                seq,
                "{agg:?} threads={threads}"
            );
        }
    }
}

/// The CSS trees' partitioned batch descents, over every standard node
/// size and both variants, including degenerate lane counts.
#[test]
fn css_partitioned_batches_are_identical() {
    let keys: Vec<u32> = (0..30_000u32).map(|i| i * 3 % 50_021).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let arr = SortedArray::from_slice(&sorted);
    let probes: Vec<u32> = (0..5_000u32).map(|i| i * 37 % 90_100).collect();
    for (variant, m) in [
        (CssVariant::Full, 16usize),
        (CssVariant::Level, 16),
        (CssVariant::Full, 24), // generic fallback
    ] {
        let t = DynCssTree::build(variant, m, arr.clone());
        let seq_lb = t.lower_bound_batch(&probes);
        let seq_pt: Vec<Option<usize>> = probes.iter().map(|&p| t.search(p)).collect();
        for threads in THREADS {
            for lanes in [0usize, 1, 8, 64] {
                assert_eq!(
                    t.lower_bound_batch_par(&probes, lanes, threads),
                    seq_lb,
                    "{variant:?} m={m} threads={threads} lanes={lanes}"
                );
                assert_eq!(
                    t.search_batch_par(&probes, lanes, threads),
                    seq_pt,
                    "{variant:?} m={m} threads={threads} lanes={lanes}"
                );
            }
        }
    }
    // The worker pool itself honours ordering for uneven partitions.
    let pool = WorkerPool::new(8);
    let doubled = pool.flat_map_chunks(&probes, |c| c.iter().map(|&p| u64::from(p) * 2).collect());
    let expect: Vec<u64> = probes.iter().map(|&p| u64::from(p) * 2).collect();
    assert_eq!(doubled, expect);
}
