//! Save → open → query equivalence: a catalog serialized to the paged
//! `ccindex-store` container and reopened — from bytes, from a file, or
//! across the wire via shard snapshot transfer — must answer every
//! query **byte-identically** to the live catalog it was saved from,
//! for every index kind and for sharded and unsharded execution alike.
//! Reopening is also idempotent: serializing the reopened catalog
//! reproduces the same container bytes.

use ccindex::db::{ResultRows, StorageFault};
use ccindex::prelude::*;

const KEY_SPACE: i64 = 120;

fn orders(rows: usize) -> Table {
    TableBuilder::new("orders")
        .int_column("cust", (0..rows).map(|i| (i as i64 * 131) % KEY_SPACE))
        .int_column("amount", (0..rows).map(|i| (i as i64 * 17) % 1_000))
        .str_column(
            "day",
            (0..rows).map(|i| ["mon", "tue", "wed", "thu"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

fn customers() -> Table {
    TableBuilder::new("customers")
        .int_column("id", 0..KEY_SPACE)
        .str_column(
            "region",
            (0..KEY_SPACE as usize).map(|i| ["e", "w", "n", "s"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

/// A catalog exercising **every** index kind: all eight on `amount`,
/// plus hash/CSS indexes on the join and group columns.
fn seeded(rows: usize) -> Database {
    let mut db = Database::new();
    db.register(orders(rows)).unwrap();
    db.register(customers()).unwrap();
    for kind in IndexKind::ALL {
        db.create_index("orders", "amount", kind).unwrap();
    }
    db.create_index("orders", "cust", IndexKind::Hash).unwrap();
    db.create_index("orders", "day", IndexKind::Hash).unwrap();
    db.create_index("customers", "id", IndexKind::LevelCss)
        .unwrap();
    db.create_index("customers", "id", IndexKind::Hash).unwrap();
    db
}

/// Every pipeline shape, including one forced probe per index kind, as
/// (label, rows).
fn battery(db: &Database) -> Vec<(String, ResultRows)> {
    let mut out = Vec::new();
    let mut run = |label: &str, rows: ResultRows| out.push((label.to_owned(), rows));
    run("all", db.query("orders").run().unwrap().rows().clone());
    run(
        "point",
        db.query("orders")
            .filter(eq("amount", 340))
            .run()
            .unwrap()
            .rows()
            .clone(),
    );
    run(
        "range",
        db.query("orders")
            .filter(between("amount", 200, 700))
            .run()
            .unwrap()
            .rows()
            .clone(),
    );
    run(
        "join_group",
        db.query("orders")
            .filter(between("amount", 50, 950))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()
            .unwrap()
            .rows()
            .clone(),
    );
    for kind in IndexKind::ALL {
        let q = db.query("orders");
        let q = if kind == IndexKind::Hash {
            q.filter(eq("amount", 340))
        } else {
            q.filter(between("amount", 333, 666))
        };
        run(
            &format!("forced_{kind:?}"),
            q.using(kind).run().unwrap().rows().clone(),
        );
    }
    out
}

fn assert_equivalent(live: &Database, reopened: &Database, label: &str) {
    let want = battery(live);
    let got = battery(reopened);
    for ((name, expect), (_, actual)) in want.iter().zip(&got) {
        assert_eq!(actual, expect, "{label}: pipeline `{name}` diverged");
    }
}

#[test]
fn bytes_roundtrip_answers_identically_for_every_index_kind() {
    let live = seeded(600);
    let bytes = live.save_to_bytes();
    let reopened = Database::open_from_bytes(bytes.clone(), "test").unwrap();
    assert_equivalent(&live, &reopened, "open_from_bytes");
    // Reopening is idempotent at the byte level: the reopened catalog
    // serializes to the very same container.
    assert_eq!(reopened.save_to_bytes(), bytes, "reserialization drifted");
}

#[test]
fn file_roundtrip_answers_identically() {
    let live = seeded(400);
    let dir = std::env::temp_dir().join(format!("ccindex-persist-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.ccsp");
    live.save_to(&path).unwrap();
    let reopened = Database::open_from(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_equivalent(&live, &reopened, "open_from");
}

#[test]
fn missing_file_is_a_typed_open_fault() {
    let err = Database::open_from("/nonexistent/ccindex/catalog.ccsp").unwrap_err();
    match err {
        MmdbError::Storage { fault, path, .. } => {
            assert_eq!(fault, StorageFault::Open);
            assert!(path.contains("catalog.ccsp"), "{path}");
        }
        other => panic!("expected a typed Storage error, got {other:?}"),
    }
}

#[test]
fn local_shard_snapshot_transfer_bootstraps_a_fresh_backend() {
    let rows = 500;
    let un = seeded(rows);
    let mut db = ShardedDatabase::new(HashPartitioner::new(2).unwrap()).unwrap();
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    for kind in IndexKind::ALL {
        db.create_index("orders", "amount", kind).unwrap();
    }
    db.create_index("orders", "cust", IndexKind::Hash).unwrap();
    db.create_index("customers", "id", IndexKind::Hash).unwrap();
    let before = db
        .query("orders")
        .filter(between("amount", 200, 700))
        .run()
        .unwrap()
        .rows()
        .clone();
    let pinned = db.snapshot();
    // Bootstrap an empty backend from shard 1's serialized pages.
    db.replace_shard_backend(1, Box::new(LocalShard::new(Database::new())))
        .unwrap();
    let after = db
        .query("orders")
        .filter(between("amount", 200, 700))
        .run()
        .unwrap()
        .rows()
        .clone();
    assert_eq!(after, before, "snapshot transfer changed answers");
    // Snapshots pinned before the swap keep answering from the old
    // backend's frozen state.
    assert_eq!(
        pinned
            .query("orders")
            .filter(between("amount", 200, 700))
            .run()
            .unwrap()
            .rows()
            .clone(),
        before
    );
    // And the composed answers still match the unsharded reference.
    assert_eq!(
        after,
        un.query("orders")
            .filter(between("amount", 200, 700))
            .run()
            .unwrap()
            .rows()
            .clone()
    );
}

#[test]
fn remote_snapshot_transfer_streams_a_shard_across_the_wire() {
    let rows = 400;
    let un = seeded(rows);
    let servers: Vec<ShardServer> = (0..2)
        .map(|_| ShardServer::spawn(Database::new()).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();
    let mut db = ShardedDatabase::connect(HashPartitioner::new(2).unwrap(), &addrs).unwrap();
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    for kind in IndexKind::ALL {
        db.create_index("orders", "amount", kind).unwrap();
    }
    db.create_index("customers", "id", IndexKind::Hash).unwrap();
    let before = db
        .query("orders")
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()
        .unwrap()
        .rows()
        .clone();
    // A brand-new empty server joins; its catalog is bootstrapped from
    // shard 1's snapshot, fetched and installed in CRC-checked chunks
    // entirely over TCP.
    let newcomer = ShardServer::spawn(Database::new()).unwrap();
    let backend = RemoteShard::connect(newcomer.addr().as_str()).unwrap();
    db.replace_shard_backend(1, Box::new(backend)).unwrap();
    let after = db
        .query("orders")
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()
        .unwrap()
        .rows()
        .clone();
    assert_eq!(after, before, "wire snapshot transfer changed answers");
    assert_eq!(
        after,
        un.query("orders")
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()
            .unwrap()
            .rows()
            .clone()
    );
    // The direct backend surface agrees too: fetching each remote
    // shard's snapshot and reopening locally recovers every row.
    let shard_rows: usize = (0..2)
        .map(|s| {
            let bytes = db.backend(s).fetch_snapshot().unwrap();
            let local = Database::open_from_bytes(bytes, "fetched").unwrap();
            local.query("orders").run().unwrap().rids().len()
        })
        .sum();
    assert_eq!(shard_rows, rows, "snapshot fetch lost rows");
    drop(db);
    newcomer.shutdown();
    for server in servers {
        server.shutdown();
    }
}
