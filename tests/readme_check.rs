//! Keeps the README's "Correctness tooling" example compiling and
//! behaving as printed: the seeded `Relaxed` publish is reported as a
//! data race, the `Release`/`Acquire` twin explores clean to
//! completion.

use check::cell::RaceCell;
use check::sync::atomic::Ordering;
use check::sync::{Arc, AtomicU64};
use check::{Checker, FindingKind};

fn demo() {
    // A racy publish: the data write is ordered only by luck, and the
    // checker reports it on the schedule where luck runs out.
    let finding = Checker::new()
        .check_result(|| {
            let data = Arc::new(RaceCell::new(0u64));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = check::thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Relaxed); // should be Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                let _ = data.get();
            }
            t.join().unwrap();
        })
        .expect_err("the Relaxed publish races");
    assert_eq!(finding.kind, FindingKind::DataRace);

    // The corrected protocol explores every schedule and comes back
    // clean — `complete` certifies the space was exhausted, not capped.
    let stats = Checker::new().check(|| {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = check::thread::spawn(move || {
            d2.set(42);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 42);
        }
        t.join().unwrap();
    });
    assert!(stats.complete);
}

#[test]
fn readme_correctness_tooling_example() {
    demo();
}
