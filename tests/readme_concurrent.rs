//! Mirror of README.md's "Concurrent catalog" example — kept as a real
//! test so the README cannot silently rot. Update both together.

use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
    )?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // Readers pin an immutable generation: an Arc bump, not a copy of
    // the catalog, and no locks anywhere on the probe path.
    let before = db.snapshot();
    let g = before.generation();

    // A commit builds the next generation off to the side (the existing
    // rebuild cycle) and swaps it in atomically. The pinned snapshot
    // keeps serving the generation it pinned, byte-stable.
    db.replace_column(
        "sales",
        "amount",
        vec![11i64, 41, 26, 100]
            .into_iter()
            .map(Value::Int)
            .collect(),
    )?;
    assert_eq!(db.generation(), g + 1);
    let old = before.query("sales").filter(eq("amount", 10)).run()?;
    assert_eq!(old.rows(), &ResultRows::Rids(vec![0])); // the old values
    let new = db.query("sales").filter(eq("amount", 11)).run()?;
    assert_eq!(new.rows(), &ResultRows::Rids(vec![0])); // the live catalog moved on

    // Handles are Send + Sync: a serving session runs on another thread
    // (pinning one snapshot per batch-formation window) while this one
    // keeps `&mut db` for commits.
    let handle = db.handle();
    let (answers, stats) = std::thread::scope(|s| {
        s.spawn(|| {
            let server = BatchServer::new(&handle);
            server.serve_concurrent(2, |_, client| {
                client.call(Request::point("sales", "amount", 41i64))
            })
        })
        .join()
        .expect("serving thread")
    });
    assert_eq!(answers[0], Ok(ResultRows::Rids(vec![1])));
    assert_eq!(stats.snapshot.generation, db.generation());
    assert_eq!(stats.snapshot.pinned, 1); // window pins dropped; `before` lives
    assert!(stats.explain().contains("generation"));

    // Dropping the last pin on an old generation reclaims it.
    assert_eq!(db.pinned_snapshots(), 1);
    drop(before);
    assert_eq!(db.pinned_snapshots(), 0);
    Ok(())
}

#[test]
fn readme_concurrent_example_runs() {
    demo().expect("the README example must keep working");
}
