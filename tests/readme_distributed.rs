//! Mirror of README.md's "Distributed shards" example — kept as a real
//! test so the README cannot silently rot. Update both together.

use ccindex::db::Value;
use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    // One ShardServer per shard, each fronting its own catalog.
    let servers: Vec<ShardServer> = (0..2)
        .map(|_| ShardServer::spawn(Database::new()))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();

    // The coordinator speaks the wire protocol; the surface is the
    // same as the in-process ShardedDatabase.
    let mut db = ShardedDatabase::connect(HashPartitioner::new(2)?, &addrs)?;
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
        "cust", // shard key
    )?;
    db.create_index("sales", "cust", IndexKind::Hash)?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // Scatter-gather over TCP: same routing, same global row ids.
    let plan = db.query("sales").filter(eq("cust", 1)).plan()?;
    assert!(plan.explain().contains("(pruned)"));
    assert_eq!(plan.execute(&db)?.rids(), &[0, 2]);

    // Updates travel the wire too, splitting by owning shard.
    db.replace_column(
        "sales",
        "amount",
        vec![11, 41, 26, 100].into_iter().map(Value::Int).collect(),
    )?;
    let hits = db.query("sales").filter(between("amount", 20, 50)).run()?;
    assert_eq!(hits.values("amount")?, vec![Value::Int(41), Value::Int(26)]);

    // A downed shard is a typed transport error, never a hang.
    for server in servers {
        server.shutdown();
    }
    match db.query("sales").filter(eq("cust", 1)).run() {
        Err(MmdbError::Transport { .. }) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    Ok(())
}

#[test]
fn readme_distributed_example_runs() {
    demo().expect("the README example must keep working");
}
