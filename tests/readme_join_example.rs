//! The README's batched-join example, kept compiling and correct.

use ccindex::prelude::*;

#[test]
fn readme_batched_join_example() {
    let orders = TableBuilder::new("orders")
        .int_column("cust", [5i64, 1, 2, 5, 9])
        .build()
        .unwrap();
    let customers = TableBuilder::new("customers")
        .int_column("id", [1i64, 2, 3, 5, 5])
        .build()
        .unwrap();

    let cust_id = customers.column("id").unwrap();
    let cust_rids = RidList::for_column(cust_id);
    let css = build_index(IndexKind::FullCss, cust_rids.keys());

    let joined = indexed_nested_loop_join(
        orders.column("cust").unwrap(),
        cust_id,
        &cust_rids,
        css.as_ref(),
    );
    assert_eq!(joined.len(), 6); // each 5 matches two customer rows; 1 and 2 one each; 9 none
}
