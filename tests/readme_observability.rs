//! Mirror of README.md's "Observability" example — kept as a real test
//! so the README cannot silently rot. Update both together.

use ccindex::prelude::*;
use ccindex::wire::Spec;
use std::sync::Arc;

fn demo() -> Result<(), MmdbError> {
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
    )?;
    db.create_index("sales", "cust", IndexKind::Hash)?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // Every executed plan stamps per-node timings; `explain_timed`
    // renders the same tree `explain` prints, annotated per node.
    let plan = db.query("sales").filter(between("amount", 20, 50)).plan()?;
    let rows = plan.execute(&db)?;
    assert_eq!(rows.rids(), &[1, 2]);
    let timed = plan.explain_timed(rows.timings());
    assert!(timed.contains(" .. ") && timed.contains("total: "));

    // The serving layer records into a shared Registry: window shapes,
    // per-request latency, queue-depth high-water, snapshot swaps.
    let registry = Arc::new(Registry::new());
    let server = BatchServer::with_metrics(&db, ServeOptions::batch_max(8), Arc::clone(&registry));
    let (answers, _) = server.serve_concurrent(2, |i, client| {
        client.call(Request::point("sales", "cust", [1i64, 3][i]))
    });
    assert_eq!(answers[0], Ok(ResultRows::Rids(vec![0, 2])));
    let latency = registry
        .find_histogram("serve.latency.ns")
        .expect("the server registers serve.latency.ns");
    assert_eq!(latency.count(), 2);
    assert!(registry
        .to_json()
        .contains("\"name\": \"serve.window.size\""));
    assert!(registry
        .to_prometheus()
        .contains("serve_latency_ns{quantile=\"0.99\"}"));

    // Cross-wire tracing: the client stamps its span id into the
    // request frame, the server answers with its own timing breakdown,
    // and the two graft into one latency tree — durations only, so no
    // clock synchronisation is needed.
    let mut shard_db = Database::new();
    shard_db.register(
        TableBuilder::new("sales")
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
    )?;
    shard_db.create_index("sales", "amount", IndexKind::FullCss)?;
    let shard_server = ShardServer::spawn(shard_db)?;
    let shard = RemoteShard::connect(shard_server.addr())?;
    let mut span = Span::root("query");
    let spec = Spec {
        table: "sales".into(),
        filters: vec![eq("amount", 40)],
        ..Spec::default()
    };
    assert_eq!(
        shard.run_spec_traced(&spec, &mut span)?,
        ResultRows::Rids(vec![1])
    );
    let tree = span.finish();
    assert!(tree.find("decode").is_some() && tree.find("execute").is_some());
    println!("{}", tree.render());
    shard_server.shutdown();
    Ok(())
}

#[test]
fn readme_observability_example_runs() {
    demo().expect("the README example must keep working");
}
