//! Mirror of README.md's "Parallel execution" example — kept as a real
//! test so the README cannot silently rot. Update both together.

use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
    )?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // Catalog-wide: every query compiled from now on partitions its
    // equality/range/join/group stages across 8 workers.
    db.set_exec_options(ExecOptions {
        threads: 8,
        lanes: 8,
        ..ExecOptions::default()
    });
    let plan = db
        .query("sales")
        .filter(between("amount", 20, 100))
        .group_by("cust", sum("amount"))
        .plan()?;
    assert!(plan.explain().contains("[x8 threads]")); // inspectable
    let groups = plan.execute(&db)?.groups().to_vec(); // same rows as threads = 1
    assert_eq!(groups.len(), 3);

    // Or per query, leaving the catalog sequential.
    db.set_exec_options(ExecOptions::default());
    let same = db
        .query("sales")
        .filter(between("amount", 20, 100))
        .group_by("cust", sum("amount"))
        .exec(ExecOptions::threads(8))
        .run()?;
    assert_eq!(same.groups(), groups);

    // The trees expose the partitioned descent directly.
    let keys: Vec<u32> = (0..100_000).collect();
    let css = FullCssTree::<u32, 16>::build(&keys);
    let probes: Vec<u32> = (0..10_000u32).map(|i| i * 31 % 120_000).collect();
    let par = css.lower_bound_batch_par(&probes, 8, 8); // 8 lanes x 8 threads
    assert_eq!(par, css.lower_bound_batch_lanes(&probes, 8));
    Ok(())
}

#[test]
fn readme_parallel_example_runs() {
    demo().expect("the README example must keep working");
}
