//! Mirror of README.md's "Persistence & cold start" example — kept as a
//! real test so the README cannot silently rot. Update both together.

use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    // Build a catalog the expensive way: sort RID lists, build trees.
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("amount", [10, 40, 25, 40])
            .str_column("region", ["e", "w", "e", "n"])
            .build()?,
    )?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // One paged, checksummed container. (`save_to`/`open_from` are the
    // file-backed twins of these byte-level calls.)
    let bytes = db.save_to_bytes();

    // Cold start: pages decode straight into serving structures.
    let reopened = Database::open_from_bytes(bytes.clone(), "readme")?;
    let live = db.query("sales").filter(between("amount", 20, 40)).run()?;
    let cold = reopened
        .query("sales")
        .filter(between("amount", 20, 40))
        .run()?;
    assert_eq!(live.rows(), cold.rows()); // byte-identical
    assert_eq!(reopened.save_to_bytes(), bytes); // idempotent

    // Corruption never panics: flip a byte, get a typed error.
    let mut evil = bytes;
    let mid = evil.len() / 2;
    evil[mid] ^= 0x10;
    match Database::open_from_bytes(evil, "readme") {
        Err(MmdbError::Storage { fault, .. }) => {
            assert_ne!(fault, StorageFault::Open); // decode-side fault
        }
        other => panic!("expected a typed storage error, got {other:?}"),
    }
    Ok(())
}

#[test]
fn readme_persistence_example() {
    demo().expect("the README example must pass as written");
}
