//! The README's "Query engine" example, kept compiling and correct.

use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .str_column("day", ["mon", "mon", "tue", "wed"])
            .build()?,
    )?;
    db.register(
        TableBuilder::new("customers")
            .int_column("id", [1, 2, 3])
            .str_column("region", ["east", "west", "east"])
            .build()?,
    )?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;
    db.create_index("sales", "day", IndexKind::Hash)?;
    db.create_index("customers", "id", IndexKind::FullCss)?;

    // Point + range conjunction, intersected as sorted RID sets.
    let monday_mid = db
        .query("sales")
        .filter(eq("day", "mon"))
        .filter(between("amount", 20, 100))
        .run()?;
    assert_eq!(monday_mid.rids(), &[1]);

    // Select ⋈ join ⋈ group-by: revenue per region.
    let revenue = db
        .query("sales")
        .filter(between("amount", 20, 100))
        .join("customers", on("cust", "id"))
        .group_by("region", sum("amount"))
        .run()?;
    assert_eq!(revenue.groups().len(), 2); // east 25+99, west 40
    Ok(())
}

#[test]
fn readme_query_engine_example() {
    demo().expect("the README example must run clean");
}
