//! Mirror of README.md's "Serving" example — kept as a real test so the
//! README cannot silently rot. Update both together.

use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    let mut db = Database::new();
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
    )?;
    db.create_index("sales", "cust", IndexKind::Hash)?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // 4 concurrent clients; compatible probes coalesce into one
    // batched descent per window, answers demux per client.
    let server = BatchServer::with_options(&db, ServeOptions::batch_max(16));
    let (answers, stats) = server.serve_concurrent(4, |i, client| {
        client.call(Request::point("sales", "cust", [1i64, 2, 3, 9][i]))
    });
    assert_eq!(answers[0], Ok(ResultRows::Rids(vec![0, 2])));
    assert_eq!(answers[3], Ok(ResultRows::Rids(vec![]))); // miss
    assert_eq!(stats.requests, 4);

    // Pipelining: many requests in flight per client deepen windows
    // beyond the client count; ranges and full plans ride along.
    let (answers, _) = server.serve_concurrent(2, |_, client| {
        let a = client.submit(Request::range("sales", "amount", 20, 50));
        let b = client.submit(Request::query(
            QuerySpec::table("sales").group_by("cust", sum("amount")),
        ));
        (a.wait(), b.wait())
    });
    let (ranged, grouped) = &answers[0];
    assert_eq!(*ranged, Ok(ResultRows::Rids(vec![1, 2])));
    match grouped {
        Ok(ResultRows::Groups(g)) => assert_eq!(g.len(), 3),
        other => panic!("expected groups, got {other:?}"),
    }
    Ok(())
}

#[test]
fn readme_serving_example_runs() {
    demo().expect("the README example must keep working");
}
