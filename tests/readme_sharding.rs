//! Mirror of README.md's "Sharded execution" example — kept as a real
//! test so the README cannot silently rot. Update both together.

use ccindex::db::Value;
use ccindex::prelude::*;

fn demo() -> Result<(), MmdbError> {
    // 4 shards, hash-partitioned on the customer key.
    let mut db = ShardedDatabase::hash(4)?;
    db.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 1, 3])
            .int_column("amount", [10, 40, 25, 99])
            .build()?,
        "cust", // shard key
    )?;
    db.create_index("sales", "cust", IndexKind::Hash)?;
    db.create_index("sales", "amount", IndexKind::FullCss)?;

    // Equality on the shard key routes to exactly one shard; the plan
    // records the routing.
    let plan = db.query("sales").filter(eq("cust", 1)).plan()?;
    assert!(plan.explain().contains("(pruned)"));
    assert_eq!(plan.execute(&db)?.rids(), &[0, 2]); // global row ids

    // Updates split by owning shard; the shard key re-partitions.
    db.replace_column(
        "sales",
        "amount",
        vec![11, 41, 26, 100].into_iter().map(Value::Int).collect(),
    )?;
    let hits = db.query("sales").filter(between("amount", 20, 50)).run()?;
    assert_eq!(hits.values("amount")?, vec![Value::Int(41), Value::Int(26)]);

    // Range partitioning prunes range probes too.
    let mut ranged = ShardedDatabase::new(RangePartitioner::int_spans(0, 99, 4)?)?;
    ranged.register(
        TableBuilder::new("sales")
            .int_column("cust", [1, 2, 55, 90])
            .build()?,
        "cust",
    )?;
    ranged.create_index("sales", "cust", IndexKind::FullCss)?;
    let plan = ranged
        .query("sales")
        .filter(between("cust", 0, 30))
        .plan()?;
    assert_eq!(plan.routing.selected, vec![0, 1]); // shards 2, 3 pruned
    Ok(())
}

#[test]
fn readme_sharding_example_runs() {
    demo().expect("the README example must keep working");
}
