//! Serving-layer equivalence: batch-formed answers must be
//! **byte-identical** to per-request sequential execution — across
//! client counts {1, 4, 32}, both engines (`Database` and a 4-shard
//! `ShardedDatabase` under both partitioners), all three request shapes
//! (point, range, full query spec), and with column updates interleaved
//! between serving windows (including a shard-key replacement that
//! re-partitions the sharded catalog mid-test).

use ccindex::db::domain::Value;
use ccindex::db::{between, eq, on, sum, Database, IndexKind, MmdbError, ResultRows, TableBuilder};
use ccindex::serve::{
    BatchServer, Pending, QuerySpec, Request, ServeEngine, ServeOptions, ServeSource,
};
use ccindex::shard::{HashPartitioner, Partitioner, RangePartitioner, ShardedDatabase};
use std::time::Duration;

const ROWS: usize = 300;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 32];

fn seed_tables(amount_mul: i64) -> (ccindex::db::Table, ccindex::db::Table) {
    let sales = TableBuilder::new("sales")
        .int_column("cust", (0..ROWS).map(|i| (i as i64 * 31) % 40))
        .int_column("amount", (0..ROWS).map(|i| (i as i64 * amount_mul) % 500))
        .str_column("day", (0..ROWS).map(|i| ["mon", "tue", "wed"][i % 3]))
        .build()
        .expect("equal columns");
    let customers = TableBuilder::new("customers")
        .int_column("id", 0..40i64)
        .str_column("region", (0..40).map(|i| ["e", "w", "n", "s"][i % 4]))
        .build()
        .expect("equal columns");
    (sales, customers)
}

fn index_unsharded(db: &mut Database) {
    db.create_index("sales", "cust", IndexKind::Hash).unwrap();
    db.create_index("sales", "cust", IndexKind::FullCss)
        .unwrap();
    db.create_index("sales", "amount", IndexKind::FullCss)
        .unwrap();
    db.create_index("customers", "id", IndexKind::LevelCss)
        .unwrap();
}

fn unsharded() -> Database {
    let (sales, customers) = seed_tables(17);
    let mut db = Database::new();
    db.register(sales).unwrap();
    db.register(customers).unwrap();
    index_unsharded(&mut db);
    db
}

fn sharded<P: Partitioner + 'static>(p: P) -> ShardedDatabase {
    let (sales, customers) = seed_tables(17);
    let mut db = ShardedDatabase::new(p).unwrap();
    db.register(sales, "cust").unwrap();
    db.register(customers, "id").unwrap();
    db.create_index("sales", "cust", IndexKind::Hash).unwrap();
    db.create_index("sales", "cust", IndexKind::FullCss)
        .unwrap();
    db.create_index("sales", "amount", IndexKind::FullCss)
        .unwrap();
    db.create_index("customers", "id", IndexKind::LevelCss)
        .unwrap();
    db
}

/// The request mix every client pipelines: shard-key and non-key points
/// (hits, duplicates, misses), ranges (pruning, empty, inverted), and
/// full query specs (join + group, group-only).
fn request_mix() -> Vec<Request> {
    vec![
        Request::point("sales", "cust", 9i64),
        Request::point("sales", "cust", 9i64),
        Request::point("sales", "cust", 999i64),
        Request::point("sales", "amount", 68i64),
        Request::range("sales", "cust", 5i64, 20i64),
        Request::range("sales", "amount", 100i64, 300i64),
        Request::range("sales", "amount", 300i64, 100i64),
        Request::query(
            QuerySpec::table("sales")
                .filter(between("amount", 50, 400))
                .join("customers", on("cust", "id"))
                .group_by("region", sum("amount")),
        ),
        Request::query(QuerySpec::table("sales").group_by("day", ccindex::db::count())),
        Request::point("customers", "id", 7i64),
    ]
}

/// Per-request sequential execution on the unsharded engine — the
/// reference every batch-formed answer must match byte-for-byte.
fn sequential_reference(db: &Database) -> Vec<Result<ResultRows, MmdbError>> {
    request_mix()
        .into_iter()
        .map(|r| match r {
            Request::Point {
                table,
                column,
                value,
            } => db
                .query(table)
                .filter(eq(&column, value))
                .run()
                .map(|r| r.rows().clone()),
            Request::Range {
                table,
                column,
                lo,
                hi,
            } => db
                .query(table)
                .filter(between(&column, lo, hi))
                .run()
                .map(|r| r.rows().clone()),
            Request::Query(spec) => db.run_spec(&spec),
        })
        .collect()
}

/// Serve the mix from `clients` concurrent clients and assert every
/// client's answers equal the sequential reference.
fn assert_serves_identically<S: ServeSource>(
    engine: &S,
    reference: &[Result<ResultRows, MmdbError>],
    label: &str,
) {
    for clients in CLIENT_COUNTS {
        for batch_max in [1usize, 16] {
            let server = BatchServer::with_options(
                engine,
                ServeOptions {
                    batch_max,
                    batch_wait: Duration::from_millis(1),
                },
            );
            let (answers, stats) = server.serve_concurrent(clients, |_, client| {
                let pending: Vec<Pending> = request_mix()
                    .into_iter()
                    .map(|r| client.submit(r))
                    .collect();
                pending.into_iter().map(Pending::wait).collect::<Vec<_>>()
            });
            assert_eq!(stats.requests, clients * reference.len());
            for (c, got) in answers.iter().enumerate() {
                assert_eq!(
                    got.as_slice(),
                    reference,
                    "{label} clients={clients} batch_max={batch_max} client={c}"
                );
            }
        }
    }
}

#[test]
fn batch_formed_answers_match_sequential_execution() {
    let un = unsharded();
    let reference = sequential_reference(&un);
    assert_serves_identically(&un, &reference, "unsharded");
    assert_serves_identically(
        &sharded(HashPartitioner::new(4).unwrap()),
        &reference,
        "hash x4",
    );
    assert_serves_identically(
        &sharded(RangePartitioner::int_spans(0, 39, 4).unwrap()),
        &reference,
        "range x4",
    );
}

#[test]
fn interleaved_updates_between_windows_stay_equivalent() {
    let mut un = unsharded();
    let mut hash_db = sharded(HashPartitioner::new(4).unwrap());
    let mut range_db = sharded(RangePartitioner::int_spans(0, 39, 4).unwrap());

    // Window phase 1: the seed catalog.
    let reference = sequential_reference(&un);
    assert_serves_identically(&un, &reference, "unsharded/seed");
    assert_serves_identically(&hash_db, &reference, "hash/seed");
    assert_serves_identically(&range_db, &reference, "range/seed");

    // Update between windows: replace a non-key column everywhere (the
    // sharded engines split the update by owning shard) and serve again.
    let new_amounts: Vec<Value> = (0..ROWS)
        .map(|i| Value::Int((i as i64 * 23) % 500))
        .collect();
    un.replace_column("sales", "amount", new_amounts.clone())
        .unwrap();
    hash_db
        .replace_column("sales", "amount", new_amounts.clone())
        .unwrap();
    range_db
        .replace_column("sales", "amount", new_amounts)
        .unwrap();
    let reference = sequential_reference(&un);
    assert_serves_identically(&un, &reference, "unsharded/updated");
    assert_serves_identically(&hash_db, &reference, "hash/updated");
    assert_serves_identically(&range_db, &reference, "range/updated");

    // Replace the shard key: the sharded catalogs re-partition (rows
    // migrate between shards) and must still serve identically.
    let new_keys: Vec<Value> = (0..ROWS)
        .map(|i| Value::Int((i as i64 * 13 + 7) % 40))
        .collect();
    un.replace_column("sales", "cust", new_keys.clone())
        .unwrap();
    hash_db
        .replace_column("sales", "cust", new_keys.clone())
        .unwrap();
    range_db.replace_column("sales", "cust", new_keys).unwrap();
    let reference = sequential_reference(&un);
    assert_serves_identically(&un, &reference, "unsharded/rekeyed");
    assert_serves_identically(&hash_db, &reference, "hash/rekeyed");
    assert_serves_identically(&range_db, &reference, "range/rekeyed");
}

#[test]
fn env_default_windows_serve_end_to_end() {
    // BatchServer::new reads CCINDEX_BATCH_MAX/CCINDEX_BATCH_WAIT_US —
    // the configuration CI exercises by running this suite under
    // CCINDEX_BATCH_MAX=16. Whatever the environment says, answers must
    // match the sequential reference.
    let un = unsharded();
    let reference = sequential_reference(&un);
    let server = BatchServer::new(&un);
    assert!(server.options().batch_max >= 1);
    let (answers, _) = server.serve_concurrent(8, |_, client| {
        request_mix()
            .into_iter()
            .map(|r| client.call(r))
            .collect::<Vec<_>>()
    });
    for got in &answers {
        assert_eq!(got.as_slice(), reference.as_slice());
    }
}
