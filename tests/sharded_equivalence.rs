//! Sharded/unsharded equivalence: the same filter + join + group
//! pipelines run on a plain `Database` and on `ShardedDatabase`s across
//! shard counts {1, 2, 8} and **both** partitioners (hash and range)
//! must return byte-identical `ResultRows` — the tentpole property of
//! the sharded subsystem. Also covered: forced access paths, decoded
//! values through owning shards, update-then-query (both the split
//! per-shard path and the re-partitioning shard-key path), and the
//! `CCINDEX_SHARDS` environment default.

use ccindex::db::Value;
use ccindex::prelude::*;
use ccindex::shard::ShardedPlan;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const KEY_SPACE: i64 = 200; // 'cust' values fall in 0..KEY_SPACE

fn orders(rows: usize) -> Table {
    TableBuilder::new("orders")
        .int_column("cust", (0..rows).map(|i| (i as i64 * 131) % KEY_SPACE))
        .int_column("amount", (0..rows).map(|i| (i as i64 * 17) % 1_000))
        .str_column(
            "day",
            (0..rows).map(|i| ["mon", "tue", "wed", "thu"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

fn customers() -> Table {
    TableBuilder::new("customers")
        .int_column("id", 0..KEY_SPACE)
        .str_column(
            "region",
            (0..KEY_SPACE as usize).map(|i| ["e", "w", "n", "s"][i % 4]),
        )
        .build()
        .expect("equal columns")
}

fn index_all(create: &mut dyn FnMut(&str, &str, IndexKind)) {
    create("orders", "cust", IndexKind::Hash);
    create("orders", "cust", IndexKind::FullCss);
    create("orders", "amount", IndexKind::FullCss);
    create("orders", "amount", IndexKind::BPlusTree);
    create("orders", "day", IndexKind::Hash);
    create("customers", "id", IndexKind::LevelCss);
    create("customers", "id", IndexKind::Hash);
}

fn unsharded(rows: usize) -> Database {
    let mut db = Database::new();
    db.register(orders(rows)).unwrap();
    db.register(customers()).unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    db
}

fn sharded<P: Partitioner + 'static>(rows: usize, p: P) -> ShardedDatabase {
    let mut db = ShardedDatabase::new(p).unwrap();
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    db
}

/// Every pipeline shape of the acceptance criteria, as (label, rows).
fn pipeline_battery(
    run: &dyn Fn(&str) -> ccindex::db::ResultRows,
) -> Vec<(String, ccindex::db::ResultRows)> {
    [
        "all",
        "point_key",
        "point_key_missing",
        "point_nonkey",
        "range_key",
        "range_nonkey",
        "conjunction",
        "join_plain",
        "join_filtered",
        "group_only",
        "group_filtered",
        "join_group_inner",
        "join_group_outer",
        "forced_css_range",
        "forced_hash_point",
    ]
    .iter()
    .map(|&name| (name.to_owned(), run(name)))
    .collect()
}

/// Both query builders expose the same combinator surface, so one macro
/// drives the identical pipeline through either catalog.
macro_rules! run_pipeline {
    ($query:expr, $what:expr) => {{
        let q = $query;
        let q = match $what {
            "all" => q,
            "point_key" => q.filter(eq("cust", 42)),
            "point_key_missing" => q.filter(eq("cust", 100_000)),
            "point_nonkey" => q.filter(eq("day", "tue")),
            "range_key" => q.filter(between("cust", 30, 110)),
            "range_nonkey" => q.filter(between("amount", 200, 700)),
            "conjunction" => q.filter(between("amount", 100, 900)).filter(eq("cust", 7)),
            "join_plain" => q.join("customers", on("cust", "id")),
            "join_filtered" => q
                .filter(between("amount", 150, 850))
                .join("customers", on("cust", "id")),
            "group_only" => q.group_by("day", count()),
            "group_filtered" => q
                .filter(between("amount", 100, 800))
                .group_by("day", sum("amount")),
            "join_group_inner" => q
                .filter(between("amount", 50, 950))
                .join("customers", on("cust", "id"))
                .group_by("region", sum("amount")),
            "join_group_outer" => q
                .join("customers", on("cust", "id"))
                .group_by("day", max("amount")),
            "forced_css_range" => q
                .filter(between("amount", 333, 666))
                .using(IndexKind::FullCss),
            "forced_hash_point" => q.filter(eq("day", "mon")).using(IndexKind::Hash),
            other => panic!("unknown pipeline {other}"),
        };
        q.run().expect("planned").rows().clone()
    }};
}

fn run_unsharded(db: &Database, what: &str) -> ccindex::db::ResultRows {
    run_pipeline!(db.query("orders"), what)
}

fn run_sharded(db: &ShardedDatabase, what: &str) -> ccindex::db::ResultRows {
    run_pipeline!(db.query("orders"), what)
}

#[test]
fn every_pipeline_matches_across_shard_counts_and_partitioners() {
    let rows = 3_000;
    let un = unsharded(rows);
    let reference = pipeline_battery(&|w| run_unsharded(&un, w));
    for shards in SHARD_COUNTS {
        let hash_db = sharded(rows, HashPartitioner::new(shards).unwrap());
        let range_db = sharded(
            rows,
            RangePartitioner::int_spans(0, KEY_SPACE - 1, shards).unwrap(),
        );
        for (label, db) in [("hash", &hash_db), ("range", &range_db)] {
            let got = pipeline_battery(&|w| run_sharded(db, w));
            for ((name, expect), (_, actual)) in reference.iter().zip(&got) {
                assert_eq!(
                    actual, expect,
                    "{label} x{shards}: pipeline `{name}` diverged"
                );
            }
        }
    }
}

#[test]
fn decoded_values_match_through_owning_shards() {
    let rows = 1_200;
    let un = unsharded(rows);
    for shards in SHARD_COUNTS {
        let db = sharded(rows, HashPartitioner::new(shards).unwrap());
        let s = db
            .query("orders")
            .filter(between("amount", 100, 500))
            .run()
            .unwrap();
        let u = un
            .query("orders")
            .filter(between("amount", 100, 500))
            .run()
            .unwrap();
        assert_eq!(s.values("day").unwrap(), u.values("day").unwrap());
        let s = db
            .query("orders")
            .filter(eq("day", "wed"))
            .join("customers", on("cust", "id"))
            .run()
            .unwrap();
        let u = un
            .query("orders")
            .filter(eq("day", "wed"))
            .join("customers", on("cust", "id"))
            .run()
            .unwrap();
        assert_eq!(s.values("region").unwrap(), u.values("region").unwrap());
        assert_eq!(s.values("amount").unwrap(), u.values("amount").unwrap());
    }
}

#[test]
fn update_then_query_matches_on_both_paths() {
    let rows = 900;
    for shards in SHARD_COUNTS {
        let mut un = unsharded(rows);
        let mut db = sharded(rows, HashPartitioner::new(shards).unwrap());
        // Non-key column: the update splits across shards.
        let amounts: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 37) % 444))
            .collect();
        un.replace_column("orders", "amount", amounts.clone())
            .unwrap();
        let report = db.replace_column("orders", "amount", amounts).unwrap();
        assert!(!report.repartitioned);
        // Shard-key column: rows migrate between shards.
        let keys: Vec<Value> = (0..rows)
            .map(|i| Value::Int((i as i64 * 53 + 11) % KEY_SPACE))
            .collect();
        un.replace_column("orders", "cust", keys.clone()).unwrap();
        let report = db.replace_column("orders", "cust", keys).unwrap();
        assert!(report.repartitioned);
        let reference = pipeline_battery(&|w| run_unsharded(&un, w));
        let got = pipeline_battery(&|w| run_sharded(&db, w));
        for ((name, expect), (_, actual)) in reference.iter().zip(&got) {
            assert_eq!(actual, expect, "x{shards} after updates: `{name}` diverged");
        }
    }
}

#[test]
fn plans_record_routing_and_exec_overrides_flow_through() {
    let rows = 600;
    let db = sharded(
        rows,
        RangePartitioner::int_spans(0, KEY_SPACE - 1, 4).unwrap(),
    );
    let plan: ShardedPlan = db
        .query("orders")
        .filter(eq("cust", 5))
        .join("customers", on("cust", "id"))
        .plan()
        .unwrap();
    assert_eq!(plan.routing.shards, 4);
    assert_eq!(plan.routing.selected.len(), 1, "point probe prunes");
    let text = plan.explain();
    assert!(text.contains("(pruned)"), "{text}");
    assert!(text.contains("per-shard plan:"), "{text}");
    // Per-query ExecOptions override reaches the compiled template.
    let plan = db
        .query("orders")
        .filter(between("amount", 1, 999))
        .group_by("day", count())
        .exec(ExecOptions::threads(8))
        .plan()
        .unwrap();
    assert_eq!(plan.template.exec.threads, 8);
    // ... and partitioned execution stays byte-identical.
    let un = unsharded(rows);
    let mut db = db;
    let sequential = pipeline_battery(&|w| run_sharded(&db, w));
    assert_eq!(sequential, pipeline_battery(&|w| run_unsharded(&un, w)));
    for threads in [0usize, 2, 8] {
        db.set_exec_options(ExecOptions::threads(threads)).unwrap();
        assert_eq!(
            pipeline_battery(&|w| run_sharded(&db, w)),
            sequential,
            "threads={threads}"
        );
    }
}

#[test]
fn env_sized_catalog_answers_identically() {
    // `ShardedDatabase::from_env()` picks its shard count from
    // CCINDEX_SHARDS (1 when unset) — CI runs the suite once with
    // CCINDEX_SHARDS=4, so this test exercises a real multi-shard
    // catalog there and the single-shard identity locally.
    let rows = 800;
    let mut db = ShardedDatabase::from_env().unwrap();
    assert_eq!(db.shards(), ExecOptions::from_env().shards.max(1));
    db.register(orders(rows), "cust").unwrap();
    db.register(customers(), "id").unwrap();
    index_all(&mut |t, c, k| db.create_index(t, c, k).unwrap());
    let un = unsharded(rows);
    let reference = pipeline_battery(&|w| run_unsharded(&un, w));
    let got = pipeline_battery(&|w| run_sharded(&db, w));
    for ((name, expect), (_, actual)) in reference.iter().zip(&got) {
        assert_eq!(actual, expect, "env-sized catalog: `{name}` diverged");
    }
}
