//! Behavioural tests of the cache simulation layer: the phenomena the
//! paper's figures hinge on must be visible in the simulator.

use bench::methods::all_methods;
use bench::protocol::simulate_lookup_protocol;
use ccindex::prelude::*;
use workload::{KeySetBuilder, LookupStream};

fn setup(n: usize) -> (Vec<u32>, SortedArray<u32>) {
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    (keys, arr)
}

/// §6.3: "when all the data can fit in cache, there is hardly any
/// difference among all the algorithms" — cache-resident arrays give all
/// ordered methods near-zero steady-state L2 misses.
#[test]
fn cache_resident_data_converges() {
    let (keys, arr) = setup(2_000); // 8 kB: fits the UltraSparc L1
    let stream = LookupStream::successful(&keys, 20_000, 3);
    let mut machine = Machine::ultrasparc2();
    for m in all_methods(&arr, 16) {
        let r = simulate_lookup_protocol(m.index.as_ref(), stream.probes(), &mut machine);
        assert!(
            r.misses_per_lookup[1] < 0.1,
            "{}: L2 misses/lookup = {}",
            m.label,
            r.misses_per_lookup[1]
        );
    }
}

/// The Figs. 10–11 ranking on both 1998 machines at a size well beyond
/// the caches.
#[test]
fn ranking_reproduces_on_both_machines() {
    let (keys, arr) = setup(1_000_000); // 4 MB >> both L2s
    let stream = LookupStream::successful(&keys, 30_000, 7);
    for mut machine in [Machine::ultrasparc2(), Machine::pentium2()] {
        let mut time = std::collections::HashMap::new();
        for m in all_methods(&arr, 16) {
            let r = simulate_lookup_protocol(m.index.as_ref(), stream.probes(), &mut machine);
            time.insert(m.label.clone(), r.total_seconds);
        }
        let name = machine.spec.name;
        // hash < CSS < B+ < binary <= {T-tree, BST}.
        assert!(time["hash"] < time["full CSS-tree"], "{name}");
        assert!(time["full CSS-tree"] < time["B+-tree"], "{name}");
        assert!(time["level CSS-tree"] < time["B+-tree"], "{name}");
        assert!(time["B+-tree"] < time["array binary search"], "{name}");
        assert!(
            time["array binary search"] < time["tree binary search"],
            "{name}"
        );
        // §6.3 headline: binary search & T-trees "run more than twice as
        // slow as CSS-trees".
        assert!(
            time["array binary search"] / time["full CSS-tree"] > 2.0,
            "{name}: ratio {}",
            time["array binary search"] / time["full CSS-tree"]
        );
        assert!(
            time["T-tree"] / time["full CSS-tree"] > 2.0,
            "{name}: T-tree ratio {}",
            time["T-tree"] / time["full CSS-tree"]
        );
    }
}

/// Fig. 12's node-size story on the simulator: for CSS-trees, one cache
/// line per node (16 ints on the 64-byte-line machine) minimises misses;
/// much larger nodes degrade toward binary search.
#[test]
fn css_node_size_optimum_is_cache_line() {
    let (keys, arr) = setup(1_000_000);
    let stream = LookupStream::successful(&keys, 20_000, 11);
    // A machine with 64-byte lines at both levels keeps the story clean.
    let mut machine = Machine::modern();
    let mut at = |m: usize| {
        let t = css_tree::DynCssTree::build(css_tree::CssVariant::Full, m, arr.clone());
        simulate_lookup_protocol(&t, stream.probes(), &mut machine).misses_per_lookup[2]
    };
    let m16 = at(16);
    let m128 = at(128);
    let m4 = at(4);
    assert!(m16 <= m4 + 0.05, "16 ({m16}) should beat 4 ({m4})");
    assert!(m16 < m128, "16 ({m16}) should beat 128 ({m128})");
}

/// §5.1: "Since CSS-trees have fewer levels than all the other methods,
/// it will also gain the most benefit from a warm cache" — Zipf-skewed
/// probe streams cut CSS misses dramatically.
#[test]
fn warm_cache_benefits_skewed_probes() {
    let (keys, arr) = setup(1_000_000);
    let uniform = LookupStream::successful(&keys, 30_000, 1);
    let zipf = LookupStream::zipf(&keys, 30_000, 1.2, 1);
    let mut machine = Machine::ultrasparc2();
    let css = css_tree::FullCssTree::<u32, 16>::build(&keys);
    let u = simulate_lookup_protocol(&css, uniform.probes(), &mut machine);
    let z = simulate_lookup_protocol(&css, zipf.probes(), &mut machine);
    assert!(
        z.misses_per_lookup[1] < 0.7 * u.misses_per_lookup[1],
        "zipf {} vs uniform {}",
        z.misses_per_lookup[1],
        u.misses_per_lookup[1]
    );
    let _ = arr;
}

/// Associativity matters: the direct-mapped UltraSparc L1 suffers
/// conflict misses the 4-way Pentium avoids on a pathological stride.
#[test]
fn associativity_is_modelled() {
    let mut sparc_l1 = ccindex::sim::Cache::new(16 * 1024, 32, 1);
    let mut pentium_l1 = ccindex::sim::Cache::new(16 * 1024, 32, 4);
    // Two addresses 16 kB apart map to the same set in both caches.
    for _ in 0..100 {
        sparc_l1.access(0, 4);
        sparc_l1.access(16 * 1024, 4);
        pentium_l1.access(0, 4);
        pentium_l1.access(16 * 1024, 4);
    }
    assert!(sparc_l1.stats().misses >= 200, "direct-mapped thrashes");
    assert!(pentium_l1.stats().misses <= 2, "4-way absorbs the conflict");
}
